//! RMT-PKA — the RMT Partial Knowledge Algorithm (Protocol 1).
//!
//! Two message types propagate along *trails* (simple paths recorded in the
//! message):
//!
//! * **type 1** `(x, p)` — a claimed dealer value with its propagation trail;
//! * **type 2** `((u, γ(u), 𝒵_u), p)` — node `u`'s initial knowledge.
//!
//! The dealer sends its value and its knowledge to its neighbours and
//! terminates; every other non-receiver node first announces its own
//! knowledge and then relays: on receiving `(a, p)` from `u` it discards the
//! message if `v ∈ p` or `tail(p) ≠ u` (so any forged trail contains at
//! least one corrupted node), otherwise forwards `(a, p‖v)` to all
//! neighbours. Trails are simple, so propagation quiesces within `n` rounds
//! — at the cost of exponentially many messages, which experiment E6
//! measures against Z-CPA.
//!
//! The receiver applies the same trail validation, accumulates everything
//! into a [`ReceiverState`] and decides via the dealer rule or the
//! full-message-set rule (see [`pka_decision`](crate::protocols::pka_decision)).
//!
//! **PPA** (full-knowledge path propagation) is this protocol on an instance
//! with [`ViewKind::Full`](rmt_graph::ViewKind::Full) views.

use rmt_adversary::AdversaryStructure;
use rmt_graph::Graph;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{Envelope, NodeContext, Payload, Protocol, WirePayload};

use crate::instance::Instance;
use crate::protocols::pka_decision::{DecisionConfig, ReceiverState};
use crate::protocols::Value;

/// A message of RMT-PKA.
#[derive(Clone, Debug, PartialEq)]
pub enum PkaPayload {
    /// Type 1: the dealer's (claimed) value with its propagation trail.
    DealerValue {
        /// The claimed value x.
        value: Value,
        /// The propagation trail p (starting at the dealer, ending at the
        /// sender).
        trail: Vec<NodeId>,
    },
    /// Type 2: a node's (claimed) initial knowledge with its trail.
    Knowledge {
        /// The node the claim is about.
        node: NodeId,
        /// The claimed view γ(node).
        view: Graph,
        /// The claimed local structure 𝒵_node.
        structure: AdversaryStructure,
        /// The propagation trail p.
        trail: Vec<NodeId>,
    },
}

impl PkaPayload {
    /// The propagation trail of either message type.
    pub fn trail(&self) -> &[NodeId] {
        match self {
            PkaPayload::DealerValue { trail, .. } | PkaPayload::Knowledge { trail, .. } => trail,
        }
    }

    fn extended(&self, v: NodeId) -> PkaPayload {
        let mut out = self.clone();
        match &mut out {
            PkaPayload::DealerValue { trail, .. } | PkaPayload::Knowledge { trail, .. } => {
                trail.push(v);
            }
        }
        out
    }
}

impl Payload for PkaPayload {
    fn encoded_bits(&self) -> usize {
        const ID_BITS: usize = 32;
        match self {
            PkaPayload::DealerValue { trail, .. } => 64 + ID_BITS * trail.len(),
            PkaPayload::Knowledge {
                view,
                structure,
                trail,
                ..
            } => {
                ID_BITS
                    + view.node_count() * ID_BITS
                    + view.edge_count() * 2 * ID_BITS
                    + structure
                        .maximal_sets()
                        .iter()
                        .map(|m| m.len() * ID_BITS)
                        .sum::<usize>()
                    + ID_BITS * trail.len()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Byte codec (rmt-netd moves real frames; the in-process runners never call
// this). Little-endian, tag-discriminated, length-prefixed collections. Every
// length is validated against the remaining input before allocation so
// adversarial bytes cannot force huge allocations, and decoding never panics.
// ---------------------------------------------------------------------------

/// Wire tag for [`PkaPayload::DealerValue`].
const TAG_DEALER_VALUE: u8 = 0;
/// Wire tag for [`PkaPayload::Knowledge`].
const TAG_KNOWLEDGE: u8 = 1;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                format!(
                    "truncated PkaPayload: {what} needs {n} bytes at offset {}, \
                     input is {} bytes",
                    self.pos,
                    self.bytes.len()
                )
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let raw = self.take(4, what)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let raw = self.take(8, what)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }

    /// A collection length, sanity-checked against the bytes actually left
    /// (each element occupies at least `min_elem_bytes` on the wire).
    fn len(&mut self, what: &str, min_elem_bytes: usize) -> Result<usize, String> {
        let n = self.u32(what)? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(format!(
                "corrupt PkaPayload: {what} claims {n} elements but only \
                 {remaining} bytes remain"
            ));
        }
        Ok(n)
    }
}

fn encode_trail(trail: &[NodeId], out: &mut Vec<u8>) {
    out.extend_from_slice(&(trail.len() as u32).to_le_bytes());
    for v in trail {
        out.extend_from_slice(&v.raw().to_le_bytes());
    }
}

fn decode_trail(c: &mut Cursor<'_>) -> Result<Vec<NodeId>, String> {
    let n = c.len("trail length", 4)?;
    (0..n)
        .map(|_| Ok(NodeId::new(c.u32("trail node")?)))
        .collect()
}

fn encode_nodeset(set: &NodeSet, out: &mut Vec<u8>) {
    out.extend_from_slice(&(set.len() as u32).to_le_bytes());
    for v in set.iter() {
        out.extend_from_slice(&v.raw().to_le_bytes());
    }
}

fn decode_nodeset(c: &mut Cursor<'_>, what: &str) -> Result<NodeSet, String> {
    let n = c.len(what, 4)?;
    let mut set = NodeSet::new();
    for _ in 0..n {
        set.insert(NodeId::new(c.u32(what)?));
    }
    Ok(set)
}

fn encode_graph(g: &Graph, out: &mut Vec<u8>) {
    encode_nodeset(g.nodes(), out);
    out.extend_from_slice(&(g.edge_count() as u32).to_le_bytes());
    for (u, v) in g.edges() {
        out.extend_from_slice(&u.raw().to_le_bytes());
        out.extend_from_slice(&v.raw().to_le_bytes());
    }
}

fn decode_graph(c: &mut Cursor<'_>) -> Result<Graph, String> {
    let nodes = decode_nodeset(c, "view node")?;
    let mut g = Graph::new();
    for v in nodes.iter() {
        g.add_node(v);
    }
    let edges = c.len("view edge count", 8)?;
    for _ in 0..edges {
        let u = NodeId::new(c.u32("view edge endpoint")?);
        let v = NodeId::new(c.u32("view edge endpoint")?);
        if !g.contains_node(u) || !g.contains_node(v) {
            return Err(format!(
                "corrupt PkaPayload: view edge ({u}, {v}) references a node \
                 absent from the view's node set"
            ));
        }
        g.add_edge(u, v);
    }
    Ok(g)
}

fn encode_structure(z: &AdversaryStructure, out: &mut Vec<u8>) {
    let sets = z.maximal_sets();
    out.extend_from_slice(&(sets.len() as u32).to_le_bytes());
    for set in sets {
        encode_nodeset(set, out);
    }
}

fn decode_structure(c: &mut Cursor<'_>) -> Result<AdversaryStructure, String> {
    let n = c.len("structure set count", 4)?;
    let mut sets = Vec::with_capacity(n);
    for _ in 0..n {
        sets.push(decode_nodeset(c, "structure set node")?);
    }
    Ok(AdversaryStructure::from_sets(sets))
}

impl WirePayload for PkaPayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PkaPayload::DealerValue { value, trail } => {
                out.push(TAG_DEALER_VALUE);
                out.extend_from_slice(&value.to_le_bytes());
                encode_trail(trail, out);
            }
            PkaPayload::Knowledge {
                node,
                view,
                structure,
                trail,
            } => {
                out.push(TAG_KNOWLEDGE);
                out.extend_from_slice(&node.raw().to_le_bytes());
                encode_graph(view, out);
                encode_structure(structure, out);
                encode_trail(trail, out);
            }
        }
    }

    fn decode(bytes: &[u8]) -> Result<(Self, usize), String> {
        let mut c = Cursor::new(bytes);
        let payload = match c.u8("payload tag")? {
            TAG_DEALER_VALUE => PkaPayload::DealerValue {
                value: c.u64("dealer value")?,
                trail: decode_trail(&mut c)?,
            },
            TAG_KNOWLEDGE => PkaPayload::Knowledge {
                node: NodeId::new(c.u32("knowledge node")?),
                view: decode_graph(&mut c)?,
                structure: decode_structure(&mut c)?,
                trail: decode_trail(&mut c)?,
            },
            tag => return Err(format!("unknown PkaPayload tag {tag}")),
        };
        Ok((payload, c.pos))
    }
}

/// A node's role in RMT-PKA.
#[derive(Clone, Debug)]
enum Role {
    Dealer { value: Value },
    Relay,
    Receiver(Box<ReceiverState>),
}

/// One player's RMT-PKA state machine.
#[derive(Clone, Debug)]
pub struct RmtPka {
    id: NodeId,
    dealer: NodeId,
    view: Graph,
    structure: AdversaryStructure,
    role: Role,
    decision: Option<Value>,
    cfg: DecisionConfig,
    /// Maximum trail length relays will forward (`None` = unbounded, the
    /// paper's protocol). See [`RmtPka::node_with_trail_bound`].
    trail_bound: Option<usize>,
}

impl RmtPka {
    /// Builds node `v` of `inst`; `input` is the dealer's value (used only
    /// when `v` is the dealer).
    pub fn node(inst: &Instance, v: NodeId, input: Value) -> Self {
        RmtPka::node_with_config(inst, v, input, DecisionConfig::default())
    }

    /// Builds node `v` with explicit decision budgets.
    pub fn node_with_config(inst: &Instance, v: NodeId, input: Value, cfg: DecisionConfig) -> Self {
        let view = inst.view(v).clone();
        let structure = inst.local_structure(v);
        let role = if v == inst.dealer() {
            Role::Dealer { value: input }
        } else if v == inst.receiver() {
            Role::Receiver(Box::new(ReceiverState::new(
                v,
                inst.dealer(),
                view.clone(),
                structure.clone(),
            )))
        } else {
            Role::Relay
        };
        RmtPka {
            id: v,
            dealer: inst.dealer(),
            view,
            structure,
            role,
            decision: (v == inst.dealer()).then_some(input),
            cfg,
            trail_bound: None,
        }
    }

    /// Builds node `v` with a **trail-length bound** `bound`: relays drop
    /// messages whose extended trail would exceed `bound` nodes.
    ///
    /// This is an *ablation* of the paper's protocol exploring its open
    /// efficiency question: the message count collapses from "all simple
    /// trails" to "trails of length ≤ bound", at the cost of completeness —
    /// the receiver can only assemble full message sets whose `G_M` paths
    /// fit the bound (safety is untouched: fewer messages means fewer
    /// candidate sets, and every accepted set still satisfies Theorem 4's
    /// argument). With `bound ≥ n` the protocol is exactly RMT-PKA.
    /// Experiment E11 sweeps the trade-off.
    pub fn node_with_trail_bound(inst: &Instance, v: NodeId, input: Value, bound: usize) -> Self {
        let mut node = RmtPka::node(inst, v, input);
        node.trail_bound = Some(bound);
        node
    }

    /// The receiver's accumulated state (receiver node only).
    pub fn receiver_state(&self) -> Option<&ReceiverState> {
        match &self.role {
            Role::Receiver(state) => Some(state),
            _ => None,
        }
    }

    /// Trail validation: `v ∈ p` or `tail(p) ≠ from` ⇒ discard.
    fn valid_arrival(&self, env: &Envelope<PkaPayload>) -> bool {
        let trail = env.payload.trail();
        trail.last() == Some(&env.from) && !trail.contains(&self.id)
    }

    fn my_knowledge_message(&self) -> PkaPayload {
        PkaPayload::Knowledge {
            node: self.id,
            view: self.view.clone(),
            structure: self.structure.clone(),
            trail: vec![self.id],
        }
    }
}

impl Protocol for RmtPka {
    type Payload = PkaPayload;
    type Decision = Value;

    fn start(&mut self, ctx: &NodeContext) -> Vec<(NodeId, PkaPayload)> {
        match &self.role {
            Role::Dealer { value } => {
                // Send the value and the dealer's knowledge, then terminate.
                let v1 = PkaPayload::DealerValue {
                    value: *value,
                    trail: vec![self.id],
                };
                let v2 = self.my_knowledge_message();
                ctx.neighbors
                    .iter()
                    .flat_map(|n| [(n, v1.clone()), (n, v2.clone())])
                    .collect()
            }
            Role::Relay => {
                let msg = self.my_knowledge_message();
                ctx.neighbors.iter().map(|n| (n, msg.clone())).collect()
            }
            // The receiver only listens (it has no propagation code).
            Role::Receiver(_) => Vec::new(),
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &[Envelope<PkaPayload>],
    ) -> Vec<(NodeId, PkaPayload)> {
        match &mut self.role {
            Role::Dealer { .. } => Vec::new(), // terminated after start
            Role::Relay => {
                let mut out = Vec::new();
                for env in inbox {
                    if env.payload.trail().last() == Some(&env.from)
                        && !env.payload.trail().contains(&self.id)
                        && self
                            .trail_bound
                            .is_none_or(|b| env.payload.trail().len() < b)
                    {
                        let fwd = env.payload.extended(self.id);
                        out.extend(ctx.neighbors.iter().map(|n| (n, fwd.clone())));
                    }
                }
                out
            }
            Role::Receiver(_) => {
                if self.decision.is_some() {
                    return Vec::new(); // output was produced; terminated
                }
                let valid: Vec<&Envelope<PkaPayload>> =
                    inbox.iter().filter(|e| self.valid_arrival(e)).collect();
                let Role::Receiver(state) = &mut self.role else {
                    unreachable!()
                };
                for env in valid {
                    match &env.payload {
                        PkaPayload::DealerValue { value, trail } => {
                            // Dealer propagation rule: the authenticated
                            // channel from the (honest) dealer is definitive.
                            if env.from == self.dealer && trail.as_slice() == [self.dealer] {
                                self.decision = Some(*value);
                                return Vec::new();
                            }
                            state.ingest_value(*value, trail);
                        }
                        PkaPayload::Knowledge {
                            node,
                            view,
                            structure,
                            ..
                        } => {
                            state.ingest_claim(*node, view.clone(), structure.clone());
                        }
                    }
                }
                if let Some(x) = state.decide(&self.cfg) {
                    self.decision = Some(x);
                }
                Vec::new()
            }
        }
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }

    fn is_terminated(&self) -> bool {
        match self.role {
            // Relays never decide; they are done when traffic stops.
            Role::Relay => true,
            _ => self.decision.is_some(),
        }
    }
}

/// Runs RMT-PKA on an instance under a given adversary — convenience for
/// tests and experiments.
///
/// # Example
///
/// ```
/// use rmt_core::{gallery, protocols::rmt_pka::run_pka};
/// use rmt_graph::ViewKind;
/// use rmt_sets::NodeSet;
/// use rmt_sim::SilentAdversary;
///
/// let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
/// let out = run_pka(&inst, 42, SilentAdversary::new(NodeSet::singleton(1u32.into())));
/// assert_eq!(out.decision(inst.receiver()), Some(42));
/// ```
pub fn run_pka<A>(inst: &Instance, input: Value, adversary: A) -> rmt_sim::RunOutcome<RmtPka>
where
    A: rmt_sim::Adversary<PkaPayload>,
{
    rmt_sim::Runner::new(
        inst.graph().clone(),
        |v| RmtPka::node(inst, v, input),
        adversary,
    )
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_graph::{generators, ViewKind};
    use rmt_sets::NodeSet;
    use rmt_sim::SilentAdversary;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn diamond() -> Graph {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    fn instance(g: Graph, z_sets: &[&[u32]], views: ViewKind, d: u32, r: u32) -> Instance {
        let z = AdversaryStructure::from_sets(
            z_sets
                .iter()
                .map(|s| s.iter().copied().collect::<NodeSet>()),
        );
        Instance::new(g, z, views, d.into(), r.into()).unwrap()
    }

    #[test]
    fn honest_diamond_delivers() {
        let inst = instance(diamond(), &[&[1]], ViewKind::AdHoc, 0, 3);
        let out = run_pka(&inst, 7, SilentAdversary::new(NodeSet::new()));
        assert_eq!(out.decision(3.into()), Some(7));
    }

    #[test]
    fn tolerated_silent_corruption_delivers() {
        let inst = instance(diamond(), &[&[1]], ViewKind::AdHoc, 0, 3);
        let out = run_pka(&inst, 7, SilentAdversary::new(set(&[1])));
        assert_eq!(out.decision(3.into()), Some(7));
    }

    #[test]
    fn rmt_cut_instance_blocks_decision_under_silence() {
        let inst = instance(diamond(), &[&[1], &[2]], ViewKind::AdHoc, 0, 3);
        assert!(crate::cuts::rmt_cut_exists(&inst));
        let out = run_pka(&inst, 7, SilentAdversary::new(set(&[1])));
        assert_eq!(out.decision(3.into()), None);
    }

    #[test]
    fn dealer_rule_fires_for_adjacent_receiver() {
        let mut g = diamond();
        g.add_edge(0.into(), 3.into());
        let inst = instance(g, &[&[1], &[2]], ViewKind::AdHoc, 0, 3);
        let out = run_pka(&inst, 7, SilentAdversary::new(set(&[1, 2])));
        assert_eq!(out.decision(3.into()), Some(7));
    }

    #[test]
    fn pka_solves_where_zcpa_fails() {
        // 6-cycle, D=0, R=3, 𝒵 = {{1,2}} (one whole side can fall, but only
        // that side). Z-CPA: R certifies only with neighbour sets ∉ 𝒵_R;
        // neighbours of R are {2,4}; with {1,2} silent R hears only from 4
        // and {4} ∈ 𝒵_R? No: 𝒵_R = traces of {1,2} on view {2,3,4} = {2}.
        // {4} ∉ 𝒵_R — Z-CPA would certify 4's relay... but 4 itself must
        // first decide via 5 with {5} ∉ 𝒵_5. Pick the sharper separation:
        // path-style knowledge lets PKA use trails where Z-CPA's
        // neighbour-local rule stalls on the longer 8-cycle with 𝒵 covering
        // a middle vertex pair.
        let g = generators::cycle(6);
        let z_sets: &[&[u32]] = &[&[1, 2]];
        let inst = instance(g, z_sets, ViewKind::AdHoc, 0, 3);
        // Sanity: solvable (no RMT-cut) and Z-CPA also solves it — the two
        // protocols agree here; the uniqueness *gap* instances are exercised
        // in the integration tests.
        assert!(!crate::cuts::rmt_cut_exists(&inst));
        let out = run_pka(&inst, 9, SilentAdversary::new(set(&[1, 2])));
        assert_eq!(out.decision(3.into()), Some(9));
    }

    #[test]
    fn relay_discards_trail_forgeries() {
        let inst = instance(diamond(), &[&[1]], ViewKind::AdHoc, 0, 3);
        let mut relay = RmtPka::node(&inst, 1.into(), 0);
        let ctx = NodeContext {
            id: 1.into(),
            round: 2,
            neighbors: inst.graph().neighbors(1.into()).clone(),
        };
        // tail(p) ≠ sender: dropped.
        let bad_tail = Envelope::new(
            0.into(),
            1.into(),
            PkaPayload::DealerValue {
                value: 5,
                trail: vec![0.into(), 2.into()],
            },
        );
        assert!(relay.on_round(&ctx, &[bad_tail]).is_empty());
        // v ∈ p: dropped (would loop).
        let looped = Envelope::new(
            0.into(),
            1.into(),
            PkaPayload::DealerValue {
                value: 5,
                trail: vec![1.into(), 0.into()],
            },
        );
        assert!(relay.on_round(&ctx, &[looped]).is_empty());
        // Valid: forwarded to all neighbours with the trail extended.
        let ok = Envelope::new(
            0.into(),
            1.into(),
            PkaPayload::DealerValue {
                value: 5,
                trail: vec![0.into()],
            },
        );
        let out = relay.on_round(&ctx, &[ok]);
        assert_eq!(out.len(), inst.graph().degree(1.into()));
        assert_eq!(out[0].1.trail(), &[0.into(), 1.into()]);
    }

    #[test]
    fn unbounded_trail_bound_changes_nothing() {
        let inst = instance(diamond(), &[&[1]], ViewKind::AdHoc, 0, 3);
        let baseline = run_pka(&inst, 7, SilentAdversary::new(NodeSet::new()));
        let bounded = rmt_sim::Runner::new(
            inst.graph().clone(),
            |v| RmtPka::node_with_trail_bound(&inst, v, 7, inst.graph().node_count()),
            SilentAdversary::new(NodeSet::new()),
        )
        .run();
        assert_eq!(baseline.decision(3.into()), bounded.decision(3.into()));
        assert_eq!(
            baseline.metrics.honest_messages,
            bounded.metrics.honest_messages
        );
    }

    #[test]
    fn tight_trail_bound_saves_messages_and_still_decides_on_short_instances() {
        // The diamond's paths have length 3 nodes, so bound 3 suffices and
        // strictly cuts traffic (length-3 relay trails are no longer grown).
        let inst = instance(diamond(), &[&[1]], ViewKind::AdHoc, 0, 3);
        let baseline = run_pka(&inst, 7, SilentAdversary::new(set(&[1])));
        let bounded = rmt_sim::Runner::new(
            inst.graph().clone(),
            |v| RmtPka::node_with_trail_bound(&inst, v, 7, 3),
            SilentAdversary::new(set(&[1])),
        )
        .run();
        assert_eq!(bounded.decision(3.into()), Some(7));
        assert!(bounded.metrics.honest_messages <= baseline.metrics.honest_messages);
    }

    #[test]
    fn too_tight_a_bound_loses_completeness_but_not_safety() {
        // Bound 2: no relay ever forwards, so only dealer-adjacent receivers
        // could decide; here R abstains — safely.
        let inst = instance(diamond(), &[&[1]], ViewKind::AdHoc, 0, 3);
        let bounded = rmt_sim::Runner::new(
            inst.graph().clone(),
            |v| RmtPka::node_with_trail_bound(&inst, v, 7, 1),
            SilentAdversary::new(NodeSet::new()),
        )
        .run();
        assert_eq!(bounded.decision(3.into()), None);
    }

    #[test]
    fn payload_bits_scale_with_content() {
        let small = PkaPayload::DealerValue {
            value: 1,
            trail: vec![0.into()],
        };
        let big = PkaPayload::DealerValue {
            value: 1,
            trail: vec![0.into(), 1.into(), 2.into()],
        };
        assert!(big.encoded_bits() > small.encoded_bits());
        let info = PkaPayload::Knowledge {
            node: 0.into(),
            view: generators::complete(4),
            structure: AdversaryStructure::from_sets([set(&[1, 2])]),
            trail: vec![0.into()],
        };
        assert!(info.encoded_bits() > big.encoded_bits());
    }

    #[test]
    fn wire_round_trip_both_message_types() {
        let dealer = PkaPayload::DealerValue {
            value: 0xFEED_FACE_CAFE_BEEF,
            trail: vec![0.into(), 2.into(), 1.into()],
        };
        assert_eq!(PkaPayload::from_bytes(&dealer.to_bytes()), Ok(dealer));

        let knowledge = PkaPayload::Knowledge {
            node: 2.into(),
            view: diamond(),
            structure: AdversaryStructure::from_sets([set(&[1]), set(&[2, 3])]),
            trail: vec![2.into()],
        };
        assert_eq!(PkaPayload::from_bytes(&knowledge.to_bytes()), Ok(knowledge));
    }

    #[test]
    fn wire_decode_never_panics_on_malformed_input() {
        // Unknown tag.
        assert!(PkaPayload::from_bytes(&[9]).is_err());
        // Empty input.
        assert!(PkaPayload::from_bytes(&[]).is_err());
        // Every truncation of a valid encoding is a descriptive error.
        let full = PkaPayload::Knowledge {
            node: 1.into(),
            view: diamond(),
            structure: AdversaryStructure::from_sets([set(&[0, 3])]),
            trail: vec![1.into(), 0.into()],
        }
        .to_bytes();
        for cut in 0..full.len() {
            assert!(PkaPayload::from_bytes(&full[..cut]).is_err());
        }
        // A length field claiming more elements than bytes remain is caught
        // before any allocation.
        let mut bomb = vec![super::TAG_DEALER_VALUE];
        bomb.extend_from_slice(&7u64.to_le_bytes());
        bomb.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(PkaPayload::from_bytes(&bomb).is_err());
        // An edge referencing a node outside the view's node set is rejected.
        let mut forged = Vec::new();
        forged.push(super::TAG_KNOWLEDGE);
        forged.extend_from_slice(&0u32.to_le_bytes()); // node
        forged.extend_from_slice(&1u32.to_le_bytes()); // 1 view node
        forged.extend_from_slice(&0u32.to_le_bytes()); //   v0
        forged.extend_from_slice(&1u32.to_le_bytes()); // 1 edge
        forged.extend_from_slice(&0u32.to_le_bytes()); //   (v0,
        forged.extend_from_slice(&5u32.to_le_bytes()); //    v5) — absent
        assert!(PkaPayload::from_bytes(&forged).is_err());
    }
}
