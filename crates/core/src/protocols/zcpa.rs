//! Z-CPA adapted to RMT (Section 4.1 of the paper).
//!
//! The dealer sends its value to its neighbours and terminates. A player
//! adjacent to the dealer decides on the dealer's value directly. Any other
//! player decides on `x` upon receiving `x` from a neighbour set
//! `N ∉ 𝒵_v` — then at least one certifier is honest in every admissible
//! scenario. On deciding, a player other than R relays once and terminates;
//! R outputs.
//!
//! Z-CPA is a *protocol scheme* (Definition 8): the membership check
//! `N ∉ 𝒵_v` is a black-box subroutine. [`MembershipOracle`] is that
//! subroutine's interface; the self-reduction of Theorem 9 plugs in a
//! simulation-based oracle (`reduction::PiSimulationOracle`) in place of the
//! explicit antichain lookup ([`ExplicitOracle`]).

use std::collections::BTreeMap;

use rmt_adversary::AdversaryStructure;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{Envelope, NodeContext, Protocol};

use crate::instance::Instance;
use crate::protocols::Value;

/// The black-box membership subroutine of the Z-CPA scheme.
///
/// `certifies(v, class, all_senders)` must return `true` iff
/// `class ∉ 𝒵_v` — i.e. the value relayed by `class` is certified because no
/// admissible corruption covers all of `class`. `all_senders` is the set of
/// all neighbours that relayed any value this far (the middle set `A` of the
/// derived star instance); explicit oracles ignore it, the Π-simulation
/// oracle needs it to build its runs.
pub trait MembershipOracle {
    /// The membership check `class ∉ 𝒵_v`.
    fn certifies(&mut self, v: NodeId, class: &NodeSet, all_senders: &NodeSet) -> bool;

    /// Number of membership queries answered (for the efficiency
    /// experiments).
    fn queries(&self) -> u64;
}

/// The explicit membership check: an antichain lookup in 𝒵_v.
#[derive(Clone, Debug)]
pub struct ExplicitOracle {
    local: AdversaryStructure,
    queries: u64,
}

impl ExplicitOracle {
    /// Creates the oracle for player `v` of `inst`.
    pub fn for_node(inst: &Instance, v: NodeId) -> Self {
        ExplicitOracle {
            local: inst.local_structure(v),
            queries: 0,
        }
    }

    /// Creates the oracle from an explicit local structure.
    pub fn new(local: AdversaryStructure) -> Self {
        ExplicitOracle { local, queries: 0 }
    }
}

impl MembershipOracle for ExplicitOracle {
    fn certifies(&mut self, _v: NodeId, class: &NodeSet, _all: &NodeSet) -> bool {
        self.queries += 1;
        !self.local.contains(class)
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

/// One player's Z-CPA state machine, generic over the membership subroutine.
#[derive(Clone, Debug)]
pub struct ZCpa<O> {
    id: NodeId,
    dealer: NodeId,
    receiver: NodeId,
    /// Dealer's input value (dealer only).
    input: Option<Value>,
    /// First value received per neighbour; `None` marks an equivocating
    /// (erroneous) neighbour excluded from certification.
    received: BTreeMap<NodeId, Option<Value>>,
    decision: Option<Value>,
    decided_at: Option<u32>,
    relayed: bool,
    broadcast: bool,
    oracle: O,
}

impl ZCpa<ExplicitOracle> {
    /// Builds the node `v` of `inst` with the explicit membership oracle.
    /// `input` is the dealer's value (used only when `v` is the dealer).
    pub fn node(inst: &Instance, v: NodeId, input: Value) -> Self {
        ZCpa::with_oracle(inst, v, input, ExplicitOracle::for_node(inst, v))
    }
}

impl<O: MembershipOracle> ZCpa<O> {
    /// Builds the node `v` of `inst` with a custom membership oracle (the
    /// protocol-scheme instantiation of Definition 8).
    pub fn with_oracle(inst: &Instance, v: NodeId, input: Value, oracle: O) -> Self {
        ZCpa {
            id: v,
            dealer: inst.dealer(),
            receiver: inst.receiver(),
            input: (v == inst.dealer()).then_some(input),
            received: BTreeMap::new(),
            decision: None,
            decided_at: None,
            relayed: false,
            broadcast: false,
            oracle,
        }
    }

    /// The round in which this node decided (0 for the dealer), if any.
    pub fn decided_at(&self) -> Option<u32> {
        self.decided_at
    }

    /// Switches the node to *broadcast* semantics: there is no distinguished
    /// receiver, so this node relays on deciding like everyone else (used by
    /// [`broadcast`](crate::broadcast)).
    pub fn set_broadcast_mode(&mut self) {
        self.broadcast = true;
    }

    /// The membership oracle (for query accounting).
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    fn relay_sends(&mut self, ctx: &NodeContext, x: Value) -> Vec<(NodeId, Value)> {
        // R outputs instead of relaying (unless in broadcast mode); everyone
        // else relays exactly once.
        if self.relayed || (self.id == self.receiver && !self.broadcast) {
            return Vec::new();
        }
        self.relayed = true;
        ctx.neighbors.iter().map(|n| (n, x)).collect()
    }

    fn try_decide(&mut self) -> Option<Value> {
        // Group senders into value classes, skipping erroneous neighbours.
        let mut classes: BTreeMap<Value, NodeSet> = BTreeMap::new();
        let mut all = NodeSet::new();
        for (&from, val) in &self.received {
            if let Some(x) = val {
                classes.entry(*x).or_default().insert(from);
                all.insert(from);
            }
        }
        for (x, class) in &classes {
            if self.oracle.certifies(self.id, class, &all) {
                return Some(*x);
            }
        }
        None
    }
}

impl<O: MembershipOracle> Protocol for ZCpa<O> {
    type Payload = Value;
    type Decision = Value;

    fn start(&mut self, ctx: &NodeContext) -> Vec<(NodeId, Value)> {
        if self.id == self.dealer {
            let x = self.input.expect("dealer has an input");
            self.decision = Some(x);
            self.decided_at = Some(0);
            self.relayed = true;
            return ctx.neighbors.iter().map(|n| (n, x)).collect();
        }
        Vec::new()
    }

    fn on_round(&mut self, ctx: &NodeContext, inbox: &[Envelope<Value>]) -> Vec<(NodeId, Value)> {
        if self.decision.is_some() {
            return Vec::new();
        }
        for env in inbox {
            if env.from == self.dealer {
                // Rule 1: the dealer's value arrives on an authenticated
                // channel from the (honest) dealer.
                self.decision = Some(env.payload);
                self.decided_at = Some(ctx.round);
                let x = env.payload;
                return self.relay_sends(ctx, x);
            }
            match self.received.entry(env.from) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(Some(env.payload));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    // A second, different message from the same neighbour is
                    // erroneous: honest players send once.
                    if *e.get() != Some(env.payload) {
                        e.insert(None);
                    }
                }
            }
        }
        if let Some(x) = self.try_decide() {
            self.decision = Some(x);
            self.decided_at = Some(ctx.round);
            return self.relay_sends(ctx, x);
        }
        Vec::new()
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }
}

/// Runs Z-CPA (explicit oracle) on an instance under a given adversary and
/// returns the receiver's decision — convenience for tests and experiments.
///
/// # Example
///
/// ```
/// use rmt_core::{gallery, protocols::zcpa::run_zcpa};
/// use rmt_graph::ViewKind;
/// use rmt_sets::NodeSet;
/// use rmt_sim::SilentAdversary;
///
/// let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
/// let out = run_zcpa(&inst, 7, SilentAdversary::new(NodeSet::new()));
/// assert_eq!(out.decision(inst.receiver()), Some(7));
/// ```
pub fn run_zcpa<A>(
    inst: &Instance,
    input: Value,
    adversary: A,
) -> rmt_sim::RunOutcome<ZCpa<ExplicitOracle>>
where
    A: rmt_sim::Adversary<Value>,
{
    rmt_sim::Runner::new(
        inst.graph().clone(),
        |v| ZCpa::node(inst, v, input),
        adversary,
    )
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_adversary::AdversaryStructure;
    use rmt_graph::{generators, Graph, ViewKind};
    use rmt_sim::SilentAdversary;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn diamond() -> Graph {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    fn adhoc(g: Graph, z: AdversaryStructure, d: u32, r: u32) -> Instance {
        Instance::new(g, z, ViewKind::AdHoc, d.into(), r.into()).unwrap()
    }

    #[test]
    fn honest_run_delivers_on_solvable_instance() {
        let inst = adhoc(diamond(), AdversaryStructure::from_sets([set(&[1])]), 0, 3);
        let out = run_zcpa(&inst, 42, SilentAdversary::new(NodeSet::new()));
        assert_eq!(out.decision(3.into()), Some(42));
    }

    #[test]
    fn silent_corruption_within_tolerance_still_delivers() {
        let inst = adhoc(diamond(), AdversaryStructure::from_sets([set(&[1])]), 0, 3);
        let out = run_zcpa(&inst, 42, SilentAdversary::new(set(&[1])));
        // R hears 42 only from 2; {2} ∉ 𝒵_R (only {1} is admissible), so R
        // certifies and decides.
        assert_eq!(out.decision(3.into()), Some(42));
    }

    #[test]
    fn unsolvable_instance_blocks_certification() {
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        let inst = adhoc(diamond(), z, 0, 3);
        let out = run_zcpa(&inst, 42, SilentAdversary::new(set(&[1])));
        // {2} ∈ 𝒵_R now, so R cannot certify — and must not decide.
        assert_eq!(out.decision(3.into()), None);
    }

    #[test]
    fn equivocating_neighbour_is_excluded() {
        // Path 0-1-2 with corrupted 1 equivocating to 2: R=2 must not decide.
        let g = generators::path_graph(3);
        let z = AdversaryStructure::from_sets([set(&[1])]);
        let inst = adhoc(g, z, 0, 2);
        let adv = rmt_sim::FnAdversary::<Value, _>::new(set(&[1]), |round, _, _| {
            if round <= 1 {
                vec![
                    Envelope::new(1.into(), 2.into(), 7u64),
                    Envelope::new(1.into(), 2.into(), 8u64),
                ]
            } else {
                Vec::new()
            }
        });
        let out = run_zcpa(&inst, 42, adv);
        assert_eq!(out.decision(2.into()), None);
    }

    #[test]
    fn dealer_neighbour_decides_from_dealer_even_if_structure_is_huge() {
        let g = generators::complete(4);
        let z = AdversaryStructure::from_sets([set(&[1, 2, 3])]);
        let inst = adhoc(g, z, 0, 3);
        let out = run_zcpa(&inst, 9, SilentAdversary::new(set(&[1, 2])));
        assert_eq!(out.decision(3.into()), Some(9));
    }

    #[test]
    fn oracle_queries_are_counted() {
        let inst = adhoc(diamond(), AdversaryStructure::from_sets([set(&[1])]), 0, 3);
        let out = run_zcpa(&inst, 1, SilentAdversary::new(NodeSet::new()));
        let r = out.protocol(3.into()).unwrap();
        // R is not a dealer neighbour: it certified via the oracle.
        assert!(r.oracle().queries() >= 1);
    }

    #[test]
    fn simulation_agrees_with_fixpoint_on_random_instances() {
        let mut rng = generators::seeded(99);
        for trial in 0..40 {
            let n = 5 + trial % 4;
            let g = generators::gnp_connected(n, 0.4, &mut rng);
            let z = crate::sampling::random_structure(g.nodes(), 3, 2, &mut rng);
            let inst = adhoc(g, z, 0, n as u32 - 1);
            for t in inst.worst_case_corruptions() {
                let analytic = crate::cuts::zcpa_fixpoint(&inst, &t);
                let out = run_zcpa(&inst, 5, SilentAdversary::new(t.clone()));
                let r = inst.receiver();
                assert_eq!(
                    analytic.contains(r),
                    out.decision(r) == Some(5),
                    "trial {trial}, T = {t}"
                );
            }
        }
    }
}
