//! Byzantine attack strategies for the safety and characterization
//! experiments.
//!
//! Each strategy implements the full-information [`Adversary`] interface of
//! `rmt-sim`. The *scenario-swap* (indistinguishability) attack is not here:
//! it is a two-run construction and lives in
//! [`analysis::coupled_attack`](crate::analysis::coupled_attack).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use rmt_adversary::AdversaryStructure;
use rmt_graph::Graph;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{Adversary, Envelope, FnAdversary, MapAdversary, SilentAdversary};

use crate::instance::Instance;
use crate::protocols::rmt_pka::{PkaPayload, RmtPka};
use crate::protocols::Value;

/// The attack strategies exercised against RMT-PKA in the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PkaAttack {
    /// Corrupted nodes send nothing (omission).
    Silent,
    /// Corrupted nodes behave honestly but flip every relayed dealer value.
    FlipValue,
    /// Corrupted nodes flip values *and* forge the propagation trail to
    /// claim a direct dealer connection.
    ForgeTrails,
    /// Corrupted nodes report fictitious topology: invented nodes, fake
    /// views, fabricated dealer paths, and a lying self-claim.
    FictitiousTopology,
    /// Corrupted nodes spam the network with many conflicting knowledge
    /// claims about honest nodes, trying to exhaust the receiver's
    /// selection budget (the receiver must stay safe even when its search
    /// is truncated).
    ClaimSpam,
}

/// All strategies, for exhaustive sweeps.
pub const PKA_ATTACKS: [PkaAttack; 5] = [
    PkaAttack::Silent,
    PkaAttack::FlipValue,
    PkaAttack::ForgeTrails,
    PkaAttack::FictitiousTopology,
    PkaAttack::ClaimSpam,
];

impl std::fmt::Display for PkaAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PkaAttack::Silent => write!(f, "silent"),
            PkaAttack::FlipValue => write!(f, "flip-value"),
            PkaAttack::ForgeTrails => write!(f, "forge-trails"),
            PkaAttack::FictitiousTopology => write!(f, "fictitious-topology"),
            PkaAttack::ClaimSpam => write!(f, "claim-spam"),
        }
    }
}

/// Builds the adversary implementing `attack` against RMT-PKA on `inst`
/// with corruption set `corrupted`.
///
/// `honest_input` is the dealer value corrupted nodes would have relayed
/// honestly (used by the honest-shell attacks); `seed` makes randomized
/// strategies reproducible.
pub fn pka_adversary(
    inst: &Instance,
    honest_input: Value,
    corrupted: NodeSet,
    attack: PkaAttack,
    seed: u64,
) -> Box<dyn Adversary<PkaPayload>> {
    match attack {
        PkaAttack::Silent => Box::new(SilentAdversary::new(corrupted)),
        PkaAttack::FlipValue => {
            let inst = inst.clone();
            Box::new(MapAdversary::new(
                corrupted,
                move |v| RmtPka::node(&inst, v, honest_input),
                |_, mut env: Envelope<PkaPayload>| {
                    if let PkaPayload::DealerValue { value, .. } = &mut env.payload {
                        *value ^= 1;
                    }
                    Some(env)
                },
            ))
        }
        PkaAttack::ForgeTrails => {
            let inst = inst.clone();
            let dealer = inst.dealer();
            Box::new(MapAdversary::new(
                corrupted,
                move |v| RmtPka::node(&inst, v, honest_input),
                move |_, mut env: Envelope<PkaPayload>| {
                    if let PkaPayload::DealerValue { value, trail } = &mut env.payload {
                        *value ^= 1;
                        // Pretend the value came straight from the dealer
                        // through us (tail must be the true sender to pass
                        // the recipient's check).
                        *trail = vec![dealer, env.from];
                    }
                    Some(env)
                },
            ))
        }
        PkaAttack::FictitiousTopology => {
            Box::new(fictitious_topology(inst, honest_input, corrupted, seed))
        }
        PkaAttack::ClaimSpam => Box::new(claim_spam(inst, honest_input, corrupted, seed)),
    }
}

/// The claim-spam attack: each corrupted node fabricates many mutually
/// conflicting knowledge claims about its honest neighbours (each with a
/// slightly different fake view) plus flipped values, inflating the
/// receiver's selection space.
fn claim_spam(
    inst: &Instance,
    honest_input: Value,
    corrupted: NodeSet,
    seed: u64,
) -> impl Adversary<PkaPayload> {
    let dealer = inst.dealer();
    let corrupted_inner = corrupted.clone();
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    FnAdversary::new(corrupted, move |round, graph: &Graph, _| {
        if round != 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for c in &corrupted_inner {
            for target in graph.neighbors(c) {
                if corrupted_inner.contains(target) {
                    continue;
                }
                // Several conflicting claims about `target`, each naming a
                // different phantom neighbour.
                for k in 0..6u32 {
                    let phantom = NodeId::new(1000 + 10 * target.raw() + k);
                    let mut fake_view = Graph::new();
                    fake_view.add_edge(target, phantom);
                    fake_view.add_edge(target, c);
                    let claim = PkaPayload::Knowledge {
                        node: target,
                        view: fake_view,
                        structure: AdversaryStructure::trivial(),
                        trail: vec![target, c],
                    };
                    for n in graph.neighbors(c) {
                        out.push(Envelope::new(c, n, claim.clone()));
                    }
                }
                if rng.random_bool(0.8) {
                    let fake_value = PkaPayload::DealerValue {
                        value: honest_input ^ 1,
                        trail: vec![dealer, target, c],
                    };
                    for n in graph.neighbors(c) {
                        out.push(Envelope::new(c, n, fake_value.clone()));
                    }
                }
            }
        }
        out
    })
}

/// The fictitious-topology attack: each corrupted node invents a ghost node
/// adjacent to both the dealer and itself, claims knowledge for the ghost
/// and a false view for itself, and injects a flipped dealer value allegedly
/// routed through the ghost.
fn fictitious_topology(
    inst: &Instance,
    honest_input: Value,
    corrupted: NodeSet,
    seed: u64,
) -> impl Adversary<PkaPayload> {
    let dealer = inst.dealer();
    let first_free = inst.graph().nodes().last().map_or(0, |v| v.raw() + 1);
    let corrupted_for_closure = corrupted.clone();
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    FnAdversary::new(corrupted, move |round, graph: &Graph, _| {
        if round != 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, c) in corrupted_for_closure.iter().enumerate() {
            let ghost = NodeId::new(first_free + i as u32);
            // Ghost's claimed view: dealer — ghost — c.
            let mut ghost_view = Graph::new();
            ghost_view.add_edge(dealer, ghost);
            ghost_view.add_edge(ghost, c);
            let ghost_claim = PkaPayload::Knowledge {
                node: ghost,
                view: ghost_view.clone(),
                structure: AdversaryStructure::trivial(),
                trail: vec![ghost, c],
            };
            // c's lying self-claim: it pretends the ghost edge exists and
            // hides a random real neighbour.
            let mut self_view = ghost_view;
            let real: Vec<NodeId> = graph.neighbors(c).iter().collect();
            for (j, n) in real.iter().enumerate() {
                if !(j == 0 && rng.random_bool(0.5)) {
                    self_view.add_edge(c, *n);
                }
            }
            let self_claim = PkaPayload::Knowledge {
                node: c,
                view: self_view,
                structure: AdversaryStructure::trivial(),
                trail: vec![c],
            };
            // A flipped dealer value allegedly routed dealer → ghost → c.
            let fake_value = PkaPayload::DealerValue {
                value: honest_input ^ 1,
                trail: vec![dealer, ghost, c],
            };
            for n in graph.neighbors(c) {
                out.push(Envelope::new(c, n, ghost_claim.clone()));
                out.push(Envelope::new(c, n, self_claim.clone()));
                out.push(Envelope::new(c, n, fake_value.clone()));
            }
        }
        out
    })
}

/// Attack strategies against Z-CPA (single-value messages).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ZcpaAttack {
    /// Send nothing.
    Silent,
    /// Relay a flipped value to everyone.
    FlipValue,
    /// Send different values to different neighbours.
    Equivocate,
}

/// All Z-CPA strategies, for exhaustive sweeps.
pub const ZCPA_ATTACKS: [ZcpaAttack; 3] = [
    ZcpaAttack::Silent,
    ZcpaAttack::FlipValue,
    ZcpaAttack::Equivocate,
];

impl std::fmt::Display for ZcpaAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZcpaAttack::Silent => write!(f, "silent"),
            ZcpaAttack::FlipValue => write!(f, "flip-value"),
            ZcpaAttack::Equivocate => write!(f, "equivocate"),
        }
    }
}

/// Builds the adversary implementing `attack` against Z-CPA.
pub fn zcpa_adversary(
    honest_input: Value,
    corrupted: NodeSet,
    attack: ZcpaAttack,
) -> Box<dyn Adversary<Value>> {
    match attack {
        ZcpaAttack::Silent => Box::new(SilentAdversary::new(corrupted)),
        ZcpaAttack::FlipValue => {
            let c2 = corrupted.clone();
            Box::new(FnAdversary::new(
                corrupted,
                move |round, graph: &Graph, _| {
                    if round != 1 {
                        return Vec::new();
                    }
                    let mut out = Vec::new();
                    for c in &c2 {
                        for n in graph.neighbors(c) {
                            out.push(Envelope::new(c, n, honest_input ^ 1));
                        }
                    }
                    out
                },
            ))
        }
        ZcpaAttack::Equivocate => {
            let c2 = corrupted.clone();
            Box::new(FnAdversary::new(
                corrupted,
                move |round, graph: &Graph, _| {
                    if round != 1 {
                        return Vec::new();
                    }
                    let mut out = Vec::new();
                    for c in &c2 {
                        for (i, n) in graph.neighbors(c).iter().enumerate() {
                            out.push(Envelope::new(c, n, honest_input ^ (i as u64 + 1)));
                        }
                    }
                    out
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::rmt_pka::run_pka;
    use rmt_graph::ViewKind;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn diamond_instance(z_sets: &[&[u32]]) -> Instance {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let z = AdversaryStructure::from_sets(
            z_sets
                .iter()
                .map(|s| s.iter().copied().collect::<NodeSet>()),
        );
        Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap()
    }

    /// On a solvable instance every attack must leave the receiver deciding
    /// the true value (resilience) — and never a wrong one (safety).
    #[test]
    fn solvable_diamond_resists_every_attack() {
        let inst = diamond_instance(&[&[1]]);
        for attack in PKA_ATTACKS {
            let adv = pka_adversary(&inst, 7, set(&[1]), attack, 11);
            let out = run_pka(&inst, 7, adv);
            assert_eq!(out.decision(3.into()), Some(7), "attack {attack}");
        }
    }

    /// On an unsolvable instance no attack may trick the receiver into a
    /// wrong decision (safety of Theorem 4); deciding the true value or
    /// abstaining are both acceptable outcomes.
    #[test]
    fn unsolvable_diamond_never_decides_wrong() {
        let inst = diamond_instance(&[&[1], &[2]]);
        for attack in PKA_ATTACKS {
            for corrupted in [set(&[1]), set(&[2])] {
                let adv = pka_adversary(&inst, 7, corrupted.clone(), attack, 13);
                let out = run_pka(&inst, 7, adv);
                let d = out.decision(3.into());
                assert!(
                    d.is_none() || d == Some(7),
                    "attack {attack}, corrupted {corrupted}: decided {d:?}"
                );
            }
        }
    }

    #[test]
    fn zcpa_attacks_never_fool_solvable_diamond() {
        use crate::protocols::zcpa::run_zcpa;
        let inst = diamond_instance(&[&[1]]);
        for attack in ZCPA_ATTACKS {
            let adv = zcpa_adversary(7, set(&[1]), attack);
            let out = run_zcpa(&inst, 7, adv);
            assert_eq!(out.decision(3.into()), Some(7), "attack {attack}");
        }
    }
}
