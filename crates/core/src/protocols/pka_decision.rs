//! The receiver's decision subroutine of RMT-PKA (Protocol 1, subroutine
//! *decision*): full message sets (Definition 5) and adversary covers
//! (Definition 6).
//!
//! The receiver accumulates type-1 messages (value + propagation trail) and
//! type-2 messages (a node's claimed view γ(u) and local structure 𝒵_u).
//! Corrupted nodes can inject *conflicting* claims about the same node and
//! entirely fictitious nodes, so a candidate valid set M corresponds to a
//! *selection*: one claim per claimed node (conflicts arise only through
//! corrupted trails, so honest information always survives as one of the
//! options). For each selection the engine
//!
//! 1. builds `G_M` — the subgraph induced by the joint claimed view on the
//!    claiming node set `V_M` (plus the receiver's own knowledge);
//! 2. searches for an **adversary cover** (Definition 6): a D–R cut `C` of
//!    `G_M` with `C ∩ V(γ(B)) ∈ 𝒵_B`, where `B` is R's component of
//!    `G_M ∖ C` and `𝒵_B` is the joint of the *claimed* structures of `B`
//!    (evaluated with the cylinder membership test — never materialized);
//! 3. if no cover exists, checks **fullness** per candidate value `x`: every
//!    D–R path of `G_M` must have arrived as a type-1 trail carrying `x`;
//!    the first full, cover-free `(selection, x)` decides `x`.
//!
//! Everything is budgeted ([`DecisionConfig`]); exceeding a budget makes the
//! receiver *conservative* (it abstains rather than risking an unverified
//! decision), preserving safety unconditionally — the [`truncated`] flag
//! records that feasibility may have been under-reported.
//!
//! [`truncated`]: ReceiverState::truncated
//!
//! Deviation from the paper's presentation (documented in DESIGN.md): the
//! subroutine runs once per round instead of once per received message —
//! observationally equivalent in a synchronous model.

use std::collections::{BTreeMap, HashSet};

use rmt_adversary::AdversaryStructure;
use rmt_graph::separators::{self, AnchorScan};
use rmt_graph::{paths, traversal, Graph};
use rmt_obs::Registry;
use rmt_sets::{NodeId, NodeSet};

use crate::protocols::Value;

/// Budgets for the receiver's (exponential in the worst case) decision
/// search.
#[derive(Clone, Copy, Debug)]
pub struct DecisionConfig {
    /// Maximum number of claim selections examined per round.
    pub max_selections: usize,
    /// Maximum number of D–R paths enumerated per candidate `G_M`.
    pub max_paths: usize,
    /// Maximum `|V_M| − 2` for the exhaustive adversary-cover search
    /// (the search visits `2^(|V_M|−2)` subsets).
    pub max_cover_candidates: usize,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            max_selections: 256,
            max_paths: 50_000,
            max_cover_candidates: 22,
        }
    }
}

/// One node's claimed knowledge, as carried by a type-2 message.
#[derive(Clone, Debug, PartialEq)]
pub struct Claim {
    /// The claimed view γ(u).
    pub view: Graph,
    /// The claimed local structure 𝒵_u.
    pub structure: AdversaryStructure,
}

/// The receiver's accumulated messages and decision engine.
#[derive(Clone, Debug)]
pub struct ReceiverState {
    me: NodeId,
    dealer: NodeId,
    my_view: Graph,
    my_structure: AdversaryStructure,
    /// Received dealer-value trails, as full D…R paths, grouped by value.
    type1: BTreeMap<Value, HashSet<Vec<NodeId>>>,
    /// Claims per node; conflicting claims are kept side by side.
    claims: BTreeMap<NodeId, Vec<Claim>>,
    /// `true` once any search budget was exceeded (feasibility may be
    /// under-reported; safety is unaffected).
    pub truncated: bool,
    /// Claims dropped as self-inconsistent (structure escaping the view, or
    /// view not containing the node).
    pub malformed_claims: u64,
    /// Claim selections examined across all [`ReceiverState::decide`] calls.
    pub selections_examined: u64,
}

impl ReceiverState {
    /// Creates the engine for receiver `me` with its own knowledge.
    pub fn new(
        me: NodeId,
        dealer: NodeId,
        my_view: Graph,
        my_structure: AdversaryStructure,
    ) -> Self {
        ReceiverState {
            me,
            dealer,
            my_view,
            my_structure,
            type1: BTreeMap::new(),
            claims: BTreeMap::new(),
            truncated: false,
            malformed_claims: 0,
            selections_examined: 0,
        }
    }

    /// Ingests a validated type-1 message: `trail` is the propagation trail
    /// (ending at the neighbour that delivered it); the stored D–R path is
    /// `trail ‖ me`.
    pub fn ingest_value(&mut self, value: Value, trail: &[NodeId]) {
        let mut path = trail.to_vec();
        path.push(self.me);
        self.type1.entry(value).or_default().insert(path);
    }

    /// Ingests a validated type-2 message: node `u` claims knowledge
    /// `(view, structure)`.
    ///
    /// Self-inconsistent claims (the view does not contain `u`, or the
    /// structure mentions nodes outside the view) are detectably malformed
    /// and dropped.
    pub fn ingest_claim(&mut self, u: NodeId, view: Graph, structure: AdversaryStructure) {
        if u == self.me {
            // The receiver's own knowledge is authoritative; claims about it
            // are noise by construction.
            self.malformed_claims += 1;
            return;
        }
        if !view.contains_node(u)
            || structure
                .maximal_sets()
                .iter()
                .any(|m| !m.is_subset(view.nodes()))
        {
            self.malformed_claims += 1;
            return;
        }
        let claim = Claim { view, structure };
        let entry = self.claims.entry(u).or_default();
        if !entry.contains(&claim) {
            entry.push(claim);
        }
    }

    /// The number of distinct claims currently held for node `u`.
    pub fn claim_count(&self, u: NodeId) -> usize {
        self.claims.get(&u).map_or(0, Vec::len)
    }

    /// Runs the full-message-set propagation rule; `Some(x)` iff some valid,
    /// full, cover-free message set M with `value(M) = x` exists within the
    /// budgets.
    ///
    /// A candidate M is determined by (a) an *exclusion set* E of claiming
    /// nodes whose type-2 messages are left out of M — necessary because a
    /// corrupted node may report honest knowledge while lying about values,
    /// so the honest full set omits it — and (b) one claim per remaining
    /// node with conflicting claims. Exclusion sets are enumerated in
    /// increasing size (the honest run needs E = ∅, an attacked run
    /// |E| ≤ |T|), claim selections by a mixed-radix counter, all under the
    /// shared `max_selections` budget.
    pub fn decide(&mut self, cfg: &DecisionConfig) -> Option<Value> {
        if self.type1.is_empty() || !self.claims.contains_key(&self.dealer) {
            return None;
        }
        let all_nodes: Vec<NodeId> = self.claims.keys().copied().collect();
        let mut excludable: NodeSet = all_nodes.iter().copied().collect();
        excludable.remove(self.dealer); // D must be in V_M for paths to exist

        let mut truncated = false;
        let mut examined = 0usize;
        let mut result = None;

        'search: for k in 0..=excludable.len() {
            for excluded in excludable.combinations(k) {
                let nodes: Vec<NodeId> = all_nodes
                    .iter()
                    .copied()
                    .filter(|u| !excluded.contains(*u))
                    .collect();
                let radices: Vec<usize> = nodes.iter().map(|u| self.claims[u].len()).collect();
                let mut counter = vec![0usize; nodes.len()];
                loop {
                    if examined >= cfg.max_selections {
                        truncated = true;
                        break 'search;
                    }
                    examined += 1;
                    let selection: Vec<(NodeId, &Claim)> = nodes
                        .iter()
                        .zip(&counter)
                        .map(|(&u, &i)| (u, &self.claims[&u][i]))
                        .collect();
                    if let Some(x) = self.examine_selection(&selection, cfg, &mut truncated) {
                        result = Some(x);
                        break 'search;
                    }
                    // Advance the mixed-radix counter; done when it wraps.
                    let mut wrapped = true;
                    for (digit, &radix) in counter.iter_mut().zip(&radices) {
                        *digit += 1;
                        if *digit < radix {
                            wrapped = false;
                            break;
                        }
                        *digit = 0;
                    }
                    if wrapped {
                        break;
                    }
                }
            }
        }
        self.truncated |= truncated;
        self.selections_examined += examined as u64;
        result
    }

    /// [`ReceiverState::decide`] with the search effort recorded in `reg`:
    ///
    /// * `pka.decide_ns` — wall time per call (histogram, stamped by the
    ///   registry's clock);
    /// * `pka.selections_examined` — claim selections examined;
    /// * `pka.decisions` — calls that returned a value;
    /// * `pka.truncations` — calls that ran into a budget and abstained
    ///   conservatively;
    ///
    /// plus a `pka.decide` phase span when the registry carries a profiler.
    pub fn decide_observed(&mut self, cfg: &DecisionConfig, reg: &Registry) -> Option<Value> {
        let _phase = reg.phase("pka.decide");
        let _timer = reg.timer("pka.decide_ns");
        let before_examined = self.selections_examined;
        let before_truncated = self.truncated;
        let result = self.decide(cfg);
        reg.counter("pka.selections_examined")
            .add(self.selections_examined - before_examined);
        if result.is_some() {
            reg.counter("pka.decisions").inc();
        }
        if self.truncated && !before_truncated {
            reg.counter("pka.truncations").inc();
        }
        result
    }

    /// Examines one claim selection: builds G_M, rejects it if an adversary
    /// cover exists, otherwise looks for a value whose paths make M full.
    fn examine_selection(
        &self,
        selection: &[(NodeId, &Claim)],
        cfg: &DecisionConfig,
        truncated: &mut bool,
    ) -> Option<Value> {
        // V_M: the claiming nodes plus the receiver itself (whose knowledge
        // R holds locally).
        let mut v_m: NodeSet = selection.iter().map(|(u, _)| *u).collect();
        v_m.insert(self.me);
        if !v_m.contains(self.dealer) {
            return None;
        }

        // γ(V_M) and the induced G_M.
        let mut joint = self.my_view.clone();
        for (_, claim) in selection {
            joint.union_with(&claim.view);
        }
        let g_m = joint.induced(&v_m);
        if !g_m.contains_node(self.dealer) || !g_m.contains_node(self.me) {
            return None;
        }

        let all_paths = match paths::simple_paths(&g_m, self.dealer, self.me, cfg.max_paths) {
            Ok(p) => p,
            Err(_) => {
                *truncated = true;
                return None;
            }
        };
        if all_paths.is_empty() {
            return None;
        }

        if self.has_adversary_cover(&g_m, &v_m, selection, cfg, truncated) {
            return None;
        }

        // Fullness per candidate value: every D–R path of G_M must have
        // arrived carrying x.
        for (&x, received) in &self.type1 {
            if all_paths.iter().all(|p| received.contains(p)) {
                return Some(x);
            }
        }
        None
    }

    /// Search for an adversary cover of M (Definition 6).
    ///
    /// Tries the separator-anchored scan first (see `rmt_core::cuts::anchored`
    /// for the charging argument): a cover exists iff some connected
    /// `B ∋ R` of `G_M` with `D ∉ N[B]` makes `C = N(B)` a cover, since the
    /// claimed structures are subset-closed so the cover condition is
    /// monotone in `C` for fixed `B`. Only if the anchored scan overruns its
    /// budget does the original `2^|candidates|` subset scan run — which is
    /// itself gated on `max_cover_candidates` (abstaining conservatively).
    fn has_adversary_cover(
        &self,
        g_m: &Graph,
        v_m: &NodeSet,
        selection: &[(NodeId, &Claim)],
        cfg: &DecisionConfig,
        truncated: &mut bool,
    ) -> bool {
        let mut candidates = v_m.clone();
        candidates.remove(self.dealer);
        candidates.remove(self.me);
        if candidates.len() > cfg.max_cover_candidates {
            // Cannot verify the absence of a cover: abstain conservatively.
            *truncated = true;
            return true;
        }
        if g_m.has_edge(self.dealer, self.me) {
            return false; // no D–R cut of G_M at all
        }
        // Claimed knowledge per node, for the joint-structure membership.
        let knowledge: BTreeMap<NodeId, (&Graph, &AdversaryStructure)> = selection
            .iter()
            .map(|(u, c)| (*u, (&c.view, &c.structure)))
            .chain(std::iter::once((
                self.me,
                (&self.my_view, &self.my_structure),
            )))
            .collect();

        if let Some(covered) = self.anchored_cover(g_m, &knowledge) {
            return covered;
        }

        'cuts: for c in candidates.subsets() {
            let b = traversal::reachable_avoiding(g_m, self.me, &c);
            if b.contains(self.dealer) {
                continue; // not a cut of G_M
            }
            let trace = c.intersection(&claimed_domain(&b, &knowledge));
            if self.trace_inadmissible(&b, &trace, &knowledge) {
                continue 'cuts;
            }
            return true;
        }
        false
    }

    /// The anchored cover scan; `None` means a budget overflowed and the
    /// caller must fall back to the exhaustive subset scan.
    fn anchored_cover(
        &self,
        g_m: &Graph,
        knowledge: &BTreeMap<NodeId, (&Graph, &AdversaryStructure)>,
    ) -> Option<bool> {
        const MAX_SEPARATORS: usize = 2048;
        const MAX_COMPONENTS_PER_ANCHOR: u64 = 1 << 18;
        let anchors = separators::cut_anchors(g_m, self.dealer, self.me, MAX_SEPARATORS).ok()?;
        for anchor in &anchors {
            let mut covered = false;
            let stats = separators::scan_anchor(
                g_m,
                anchor,
                self.me,
                MAX_COMPONENTS_PER_ANCHOR,
                |b, cut| {
                    let trace = cut.intersection(&claimed_domain(b, knowledge));
                    if !self.trace_inadmissible(b, &trace, knowledge) {
                        covered = true;
                        return false;
                    }
                    true
                },
            );
            if covered {
                return Some(true);
            }
            if stats.outcome == AnchorScan::BudgetExceeded {
                return None;
            }
        }
        Some(false)
    }

    /// `true` iff some node of `B` refutes the trace — the cut is then *not*
    /// a cover; `false` means the trace is jointly admissible (cover found).
    fn trace_inadmissible(
        &self,
        b: &NodeSet,
        trace: &NodeSet,
        knowledge: &BTreeMap<NodeId, (&Graph, &AdversaryStructure)>,
    ) -> bool {
        // 𝒵_B membership via the cylinder test over claimed structures.
        b.iter().any(|u| {
            knowledge.get(&u).is_some_and(|(view, structure)| {
                !structure.contains(&trace.intersection(view.nodes()))
            })
        })
    }
}

/// γ(B) from the claimed views of B.
fn claimed_domain(
    b: &NodeSet,
    knowledge: &BTreeMap<NodeId, (&Graph, &AdversaryStructure)>,
) -> NodeSet {
    let mut gamma_b = NodeSet::new();
    for u in b {
        if let Some((view, _)) = knowledge.get(&u) {
            gamma_b.union_with(view.nodes());
        }
    }
    gamma_b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_graph::ViewKind;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    /// Diamond D=0, relays 1,2, R=3 with ad hoc views and 𝒵 = {{1}}.
    fn setup(z_sets: &[&[u32]]) -> (ReceiverState, Graph, AdversaryStructure) {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let z = AdversaryStructure::from_sets(
            z_sets
                .iter()
                .map(|s| s.iter().copied().collect::<NodeSet>()),
        );
        let me = NodeId::new(3);
        let my_view = ViewKind::AdHoc.view_of(&g, me);
        let my_structure = z.restrict_sets(my_view.nodes());
        (
            ReceiverState::new(me, 0.into(), my_view, my_structure),
            g,
            z,
        )
    }

    fn feed_honest(
        state: &mut ReceiverState,
        g: &Graph,
        z: &AdversaryStructure,
        x: Value,
        skip: &NodeSet,
    ) {
        // Claims from every non-receiver node not in `skip`.
        for u in g.nodes() {
            if u == state.me || skip.contains(u) {
                continue;
            }
            let view = ViewKind::AdHoc.view_of(g, u);
            let structure = z.restrict_sets(view.nodes());
            state.ingest_claim(u, view, structure);
        }
        // Trails through honest relays.
        for relay in [1u32, 2] {
            if !skip.contains(relay.into()) {
                state.ingest_value(x, &[0.into(), relay.into()]);
            }
        }
    }

    #[test]
    fn full_honest_information_decides() {
        let (mut state, g, z) = setup(&[&[1]]);
        feed_honest(&mut state, &g, &z, 7, &NodeSet::new());
        assert_eq!(state.decide(&DecisionConfig::default()), Some(7));
        assert!(!state.truncated);
    }

    #[test]
    fn silent_tolerated_corruption_still_decides() {
        // Node 1 silent (𝒵 = {{1}}): G_M misses 1, the only cover candidate
        // is {2} which is not admissible for B = {3}.
        let (mut state, g, z) = setup(&[&[1]]);
        feed_honest(&mut state, &g, &z, 7, &set(&[1]));
        assert_eq!(state.decide(&DecisionConfig::default()), Some(7));
    }

    #[test]
    fn cover_blocks_decision_when_both_relays_are_suspect() {
        // 𝒵 = {{1},{2}}: with node 1 silent, C = {2} is an adversary cover
        // of the received M — R must abstain.
        let (mut state, g, z) = setup(&[&[1], &[2]]);
        feed_honest(&mut state, &g, &z, 7, &set(&[1]));
        assert_eq!(state.decide(&DecisionConfig::default()), None);
    }

    #[test]
    fn exclusion_recovers_fullness_when_a_path_is_missing() {
        // All claims arrive but only the trail through 2 carries the value:
        // the M containing node 1's claim is not full, but the valid M that
        // *excludes* node 1 is full and cover-free ({2} ∉ 𝒵_R), so R decides
        // — the subset semantics of the full-message-set rule.
        let (mut state, g, z) = setup(&[&[1]]);
        for u in g.nodes() {
            if u == state.me {
                continue;
            }
            let view = ViewKind::AdHoc.view_of(&g, u);
            let structure = z.restrict_sets(view.nodes());
            state.ingest_claim(u, view, structure);
        }
        state.ingest_value(7, &[0.into(), 2.into()]);
        assert_eq!(state.decide(&DecisionConfig::default()), Some(7));
    }

    #[test]
    fn missing_path_blocks_when_exclusion_would_leave_a_cover() {
        // Same shape but 𝒵 = {{1},{2}}: excluding 1 leaves the cover {2},
        // keeping 1 breaks fullness — R must abstain either way.
        let (mut state, g, z) = setup(&[&[1], &[2]]);
        for u in g.nodes() {
            if u == state.me {
                continue;
            }
            let view = ViewKind::AdHoc.view_of(&g, u);
            let structure = z.restrict_sets(view.nodes());
            state.ingest_claim(u, view, structure);
        }
        state.ingest_value(7, &[0.into(), 2.into()]);
        assert_eq!(state.decide(&DecisionConfig::default()), None);
    }

    #[test]
    fn conflicting_values_on_all_paths_block_decision() {
        let (mut state, g, z) = setup(&[&[1]]);
        feed_honest(&mut state, &g, &z, 7, &NodeSet::new());
        // Corrupted 1 also injected value 9 over its trail: the 9-set is not
        // full (missing the path through 2), the 7-set is full and decides.
        state.ingest_value(9, &[0.into(), 1.into()]);
        assert_eq!(state.decide(&DecisionConfig::default()), Some(7));
    }

    #[test]
    fn malformed_claims_are_dropped() {
        let (mut state, _, _) = setup(&[&[1]]);
        let mut bad_view = Graph::new();
        bad_view.add_edge(0.into(), 2.into()); // does not contain claimant 1
        state.ingest_claim(1.into(), bad_view, AdversaryStructure::trivial());
        assert_eq!(state.malformed_claims, 1);
        assert_eq!(state.claim_count(1.into()), 0);

        let mut view = Graph::new();
        view.add_edge(1.into(), 0.into());
        let escaping = AdversaryStructure::from_sets([set(&[9])]);
        state.ingest_claim(1.into(), view, escaping);
        assert_eq!(state.malformed_claims, 2);
    }

    #[test]
    fn conflicting_claims_enumerate_both_options() {
        let (mut state, g, z) = setup(&[&[1]]);
        feed_honest(&mut state, &g, &z, 7, &NodeSet::new());
        // A second, fake claim about node 2 with an absurd view: the honest
        // selection still exists and decides.
        let mut fake = Graph::new();
        fake.add_edge(2.into(), 9.into());
        fake.add_node(2.into());
        state.ingest_claim(2.into(), fake, AdversaryStructure::trivial());
        assert_eq!(state.claim_count(2.into()), 2);
        assert_eq!(state.decide(&DecisionConfig::default()), Some(7));
    }

    #[test]
    fn observed_decide_is_transparent_and_records_effort() {
        let (mut state, g, z) = setup(&[&[1]]);
        feed_honest(&mut state, &g, &z, 7, &NodeSet::new());
        let mut twin = state.clone();
        let reg = Registry::new();
        let prof = rmt_obs::Profiler::new(rmt_obs::Clock::virtual_ns(1));
        reg.attach_profiler(prof.clone());
        let cfg = DecisionConfig::default();
        assert_eq!(state.decide_observed(&cfg, &reg), twin.decide(&cfg));
        assert_eq!(state.truncated, twin.truncated);
        assert_eq!(state.selections_examined, twin.selections_examined);
        assert_eq!(
            reg.counter("pka.selections_examined").get(),
            twin.selections_examined
        );
        assert_eq!(reg.counter("pka.decisions").get(), 1);
        assert_eq!(reg.counter("pka.truncations").get(), 0);
        assert_eq!(reg.histogram("pka.decide_ns").count(), 1);
        let roots = rmt_obs::span_tree(&prof.events()).expect("well nested");
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "pka.decide");
    }

    #[test]
    fn exhausted_selection_budget_sets_truncated() {
        let (mut state, g, z) = setup(&[&[1]]);
        feed_honest(&mut state, &g, &z, 7, &NodeSet::new());
        let cfg = DecisionConfig {
            max_selections: 0,
            ..DecisionConfig::default()
        };
        assert_eq!(state.decide(&cfg), None);
        assert!(state.truncated);
    }

    #[test]
    fn cover_budget_forces_conservative_abstention() {
        let (mut state, g, z) = setup(&[&[1]]);
        feed_honest(&mut state, &g, &z, 7, &NodeSet::new());
        let cfg = DecisionConfig {
            max_cover_candidates: 0,
            ..DecisionConfig::default()
        };
        // Unable to verify the absence of a cover, R abstains (safely).
        assert_eq!(state.decide(&cfg), None);
        assert!(state.truncated);
    }

    use rmt_graph::Graph;
}
