//! PPA — the Path Propagation Algorithm, the classical *full-knowledge*
//! baseline (Pelc–Peleg '05 / PPS '14, adapted to RMT).
//!
//! Every node relays the dealer's value along trails exactly as RMT-PKA
//! does (same validation rules), but no knowledge (type-2) messages are
//! exchanged: the receiver knows the whole graph and the whole structure 𝒵
//! a priori and decides by the **credibility rule**:
//!
//! > decide `x` iff no admissible `Z ∈ 𝒵` covers *all* received trails
//! > carrying `x`.
//!
//! Soundness: if some received `x`-trail avoids every admissible `Z`, it in
//! particular avoids the actual corruption set, so it was relayed by honest
//! nodes only and `x = x_D`. Completeness: the rule eventually fires for
//! `x_D` iff no **pair cut** exists — no `Z₁ ∪ Z₂` with `Z₁, Z₂ ∈ 𝒵`
//! separating D from R ([`pair_cut_exists`]) — which is exactly the
//! full-knowledge specialization of the RMT-cut characterization (tested in
//! this module and swept in experiment E9).

use std::collections::BTreeMap;

use rmt_adversary::AdversaryStructure;
use rmt_graph::traversal;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{Envelope, NodeContext, Payload, Protocol};

use crate::instance::Instance;
use crate::protocols::Value;

/// A PPA message: the claimed dealer value with its propagation trail.
#[derive(Clone, Debug, PartialEq)]
pub struct PpaPayload {
    /// The claimed value.
    pub value: Value,
    /// The propagation trail (starting at the dealer, ending at the sender).
    pub trail: Vec<NodeId>,
}

impl Payload for PpaPayload {
    fn encoded_bits(&self) -> usize {
        64 + 32 * self.trail.len()
    }
}

/// One player's PPA state machine.
#[derive(Clone, Debug)]
pub struct Ppa {
    id: NodeId,
    dealer: NodeId,
    receiver: NodeId,
    /// The receiver's a-priori knowledge (full-knowledge model).
    structure: AdversaryStructure,
    input: Option<Value>,
    /// Received D–R paths per value (receiver only).
    paths: BTreeMap<Value, Vec<NodeSet>>,
    decision: Option<Value>,
}

impl Ppa {
    /// Builds node `v` of `inst`. PPA assumes full knowledge; the instance's
    /// view assignment is ignored and 𝒵 itself is handed to the receiver.
    pub fn node(inst: &Instance, v: NodeId, input: Value) -> Self {
        Ppa {
            id: v,
            dealer: inst.dealer(),
            receiver: inst.receiver(),
            structure: inst.adversary().clone(),
            input: (v == inst.dealer()).then_some(input),
            paths: BTreeMap::new(),
            decision: (v == inst.dealer()).then_some(input),
        }
    }

    /// The credibility rule on the accumulated evidence.
    fn try_decide(&self) -> Option<Value> {
        for (&x, witness_paths) in &self.paths {
            let covered = |z: &NodeSet| witness_paths.iter().all(|p| !p.is_disjoint(z));
            let explained_away = self.structure.maximal_sets().iter().any(covered);
            // The trivial structure {∅} explains nothing away (∅ covers no
            // non-empty path set).
            if !explained_away && !witness_paths.is_empty() {
                return Some(x);
            }
        }
        None
    }
}

impl Protocol for Ppa {
    type Payload = PpaPayload;
    type Decision = Value;

    fn start(&mut self, ctx: &NodeContext) -> Vec<(NodeId, PpaPayload)> {
        match self.input {
            Some(value) if self.id == self.dealer => {
                let msg = PpaPayload {
                    value,
                    trail: vec![self.id],
                };
                ctx.neighbors.iter().map(|n| (n, msg.clone())).collect()
            }
            _ => Vec::new(),
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &[Envelope<PpaPayload>],
    ) -> Vec<(NodeId, PpaPayload)> {
        if self.id == self.dealer {
            return Vec::new();
        }
        let mut out = Vec::new();
        for env in inbox {
            let trail = &env.payload.trail;
            if trail.last() != Some(&env.from) || trail.contains(&self.id) {
                continue; // forged tail or loop: discard
            }
            if self.id == self.receiver {
                if self.decision.is_some() {
                    return Vec::new();
                }
                // Internal nodes of the D–R path (exclude D and R: they are
                // honest by assumption and never count toward covers).
                let internal: NodeSet = trail
                    .iter()
                    .copied()
                    .filter(|v| *v != self.dealer)
                    .collect();
                self.paths
                    .entry(env.payload.value)
                    .or_default()
                    .push(internal);
            } else {
                let mut fwd = env.payload.clone();
                fwd.trail.push(self.id);
                out.extend(ctx.neighbors.iter().map(|n| (n, fwd.clone())));
            }
        }
        if self.id == self.receiver && self.decision.is_none() {
            self.decision = self.try_decide();
        }
        out
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }

    fn is_terminated(&self) -> bool {
        self.id != self.receiver || self.decision.is_some()
    }
}

/// The classical full-knowledge obstruction: a **pair cut** is a D–R cut of
/// the form `Z₁ ∪ Z₂` with `Z₁, Z₂ ∈ 𝒵`. RMT with full knowledge is
/// solvable iff none exists — the full-knowledge specialization of the
/// RMT-cut (tested in `full_knowledge_rmt_cut_is_pair_cut`).
///
/// Polynomial in |𝒵|²: only maximal sets need checking (cuts are monotone).
///
/// # Example
///
/// ```
/// use rmt_core::{gallery, protocols::ppa};
/// use rmt_graph::ViewKind;
///
/// assert!(ppa::pair_cut_exists(&gallery::unsolvable_diamond(ViewKind::Full)));
/// // The staggered theta needs *three* members to cut — no pair suffices.
/// assert!(!ppa::pair_cut_exists(&gallery::staggered_theta(ViewKind::Full)));
/// ```
pub fn pair_cut_exists(inst: &Instance) -> bool {
    let (d, r) = (inst.dealer(), inst.receiver());
    if inst.graph().has_edge(d, r) {
        return false;
    }
    if !inst.endpoints_connected() {
        return true; // the empty pair cut
    }
    let max = inst.adversary().maximal_sets();
    let mut endpoints = NodeSet::new();
    endpoints.insert(d);
    endpoints.insert(r);
    let blocks =
        |c: &NodeSet| !traversal::connected_avoiding(inst.graph(), d, r, &c.difference(&endpoints));
    if max.is_empty() {
        return false; // only ∅ ∪ ∅, and the endpoints are connected
    }
    max.iter()
        .enumerate()
        .any(|(i, z1)| max[i..].iter().any(|z2| blocks(&z1.union(z2))))
}

/// Runs PPA on an instance under a given adversary.
pub fn run_ppa<A>(inst: &Instance, input: Value, adversary: A) -> rmt_sim::RunOutcome<Ppa>
where
    A: rmt_sim::Adversary<PpaPayload>,
{
    rmt_sim::Runner::new(
        inst.graph().clone(),
        |v| Ppa::node(inst, v, input),
        adversary,
    )
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_graph::{generators, Graph, ViewKind};
    use rmt_sim::SilentAdversary;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn full(g: Graph, z_sets: &[&[u32]], d: u32, r: u32) -> Instance {
        let z = AdversaryStructure::from_sets(
            z_sets
                .iter()
                .map(|s| s.iter().copied().collect::<NodeSet>()),
        );
        Instance::new(g, z, ViewKind::Full, d.into(), r.into()).unwrap()
    }

    fn diamond() -> Graph {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    #[test]
    fn ppa_delivers_on_pair_cut_free_instances() {
        let inst = full(diamond(), &[&[1]], 0, 3);
        assert!(!pair_cut_exists(&inst));
        let out = run_ppa(&inst, 7, SilentAdversary::new(set(&[1])));
        assert_eq!(out.decision(3.into()), Some(7));
    }

    #[test]
    fn ppa_abstains_under_a_pair_cut() {
        let inst = full(diamond(), &[&[1], &[2]], 0, 3);
        assert!(pair_cut_exists(&inst));
        let out = run_ppa(&inst, 7, SilentAdversary::new(set(&[1])));
        assert_eq!(out.decision(3.into()), None);
    }

    #[test]
    fn ppa_is_safe_under_value_flipping() {
        // Corrupted relay 1 flips; R must still decide the true value via 2.
        let inst = full(diamond(), &[&[1]], 0, 3);
        let adv = rmt_sim::MapAdversary::new(
            set(&[1]),
            |v| Ppa::node(&inst, v, 7),
            |_, mut env: Envelope<PpaPayload>| {
                env.payload.value ^= 1;
                Some(env)
            },
        );
        let out = run_ppa(&inst, 7, adv);
        assert_eq!(out.decision(3.into()), Some(7));
    }

    #[test]
    fn full_knowledge_rmt_cut_is_pair_cut() {
        // Under full views the RMT-cut characterization degenerates to the
        // classical pair cut — sweep random instances.
        let mut rng = generators::seeded(77);
        for trial in 0..40 {
            let n = 5 + trial % 4;
            let inst = crate::sampling::random_instance_nonadjacent(
                n,
                0.35,
                ViewKind::Full,
                3,
                2,
                &mut rng,
            );
            assert_eq!(
                crate::cuts::find_rmt_cut(&inst).is_some(),
                pair_cut_exists(&inst),
                "trial {trial}: {inst:?}"
            );
        }
    }

    #[test]
    fn ppa_agrees_with_pka_under_full_views() {
        // PPA and RMT-PKA(full views) must reach the same verdict under
        // silent corruptions.
        let mut rng = generators::seeded(78);
        for trial in 0..20 {
            let n = 5 + trial % 3;
            let inst = crate::sampling::random_instance_nonadjacent(
                n,
                0.4,
                ViewKind::Full,
                3,
                2,
                &mut rng,
            );
            let solvable = !pair_cut_exists(&inst);
            for t in inst.worst_case_corruptions() {
                let ppa = run_ppa(&inst, 7, SilentAdversary::new(t.clone()));
                let pka =
                    crate::protocols::rmt_pka::run_pka(&inst, 7, SilentAdversary::new(t.clone()));
                let (dp, dk) = (ppa.decision(inst.receiver()), pka.decision(inst.receiver()));
                if solvable {
                    // On solvable instances both must deliver.
                    assert_eq!(dp, Some(7), "trial {trial}, T = {t}");
                    assert_eq!(dk, Some(7), "trial {trial}, T = {t}");
                } else {
                    // On unsolvable instances both must at least be safe
                    // (outcomes may differ under a weak attack).
                    assert!(dp.is_none() || dp == Some(7), "trial {trial}");
                    assert!(dk.is_none() || dk == Some(7), "trial {trial}");
                }
            }
        }
    }

    #[test]
    fn pair_cut_edge_cases() {
        // Adjacent endpoints: never a pair cut.
        let mut g = diamond();
        g.add_edge(0.into(), 3.into());
        assert!(!pair_cut_exists(&full(g, &[&[1], &[2]], 0, 3)));
        // Disconnected endpoints: the empty pair cut.
        let mut g = generators::path_graph(2);
        g.add_node(4.into());
        assert!(pair_cut_exists(&full(g, &[], 0, 4)));
        // Trivial structure on a connected graph: no pair cut.
        assert!(!pair_cut_exists(&full(generators::cycle(5), &[], 0, 2)));
    }
}
