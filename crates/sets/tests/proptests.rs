//! Property tests checking `NodeSet` against a `BTreeSet<u32>` model.

use proptest::prelude::*;
use rmt_sets::{NodeId, NodeSet};
use std::collections::BTreeSet;

fn ids() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..200, 0..40)
}

fn to_nodeset(v: &[u32]) -> NodeSet {
    v.iter().copied().collect()
}

fn to_model(v: &[u32]) -> BTreeSet<u32> {
    v.iter().copied().collect()
}

proptest! {
    #[test]
    fn union_matches_model(a in ids(), b in ids()) {
        let (sa, sb) = (to_nodeset(&a), to_nodeset(&b));
        let model: Vec<u32> = to_model(&a).union(&to_model(&b)).copied().collect();
        let got: Vec<u32> = sa.union(&sb).iter().map(NodeId::raw).collect();
        prop_assert_eq!(got, model);
    }

    #[test]
    fn intersection_matches_model(a in ids(), b in ids()) {
        let (sa, sb) = (to_nodeset(&a), to_nodeset(&b));
        let model: Vec<u32> = to_model(&a).intersection(&to_model(&b)).copied().collect();
        let got: Vec<u32> = sa.intersection(&sb).iter().map(NodeId::raw).collect();
        prop_assert_eq!(got, model);
    }

    #[test]
    fn difference_matches_model(a in ids(), b in ids()) {
        let (sa, sb) = (to_nodeset(&a), to_nodeset(&b));
        let model: Vec<u32> = to_model(&a).difference(&to_model(&b)).copied().collect();
        let got: Vec<u32> = sa.difference(&sb).iter().map(NodeId::raw).collect();
        prop_assert_eq!(got, model);
    }

    #[test]
    fn subset_relation_matches_model(a in ids(), b in ids()) {
        let (sa, sb) = (to_nodeset(&a), to_nodeset(&b));
        prop_assert_eq!(sa.is_subset(&sb), to_model(&a).is_subset(&to_model(&b)));
        prop_assert_eq!(sa.is_disjoint(&sb), to_model(&a).is_disjoint(&to_model(&b)));
    }

    #[test]
    fn len_and_iteration_match_model(a in ids()) {
        let sa = to_nodeset(&a);
        let model = to_model(&a);
        prop_assert_eq!(sa.len(), model.len());
        prop_assert_eq!(sa.is_empty(), model.is_empty());
        let got: Vec<u32> = sa.iter().map(NodeId::raw).collect();
        let want: Vec<u32> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn demorgan_within_a_universe(a in ids(), b in ids()) {
        let u = NodeSet::universe(200);
        let (sa, sb) = (to_nodeset(&a), to_nodeset(&b));
        let lhs = u.difference(&sa.union(&sb));
        let rhs = u.difference(&sa).intersection(&u.difference(&sb));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn ord_is_consistent_with_eq(a in ids(), b in ids()) {
        let (sa, sb) = (to_nodeset(&a), to_nodeset(&b));
        prop_assert_eq!(sa == sb, sa.cmp(&sb) == std::cmp::Ordering::Equal);
    }

    #[test]
    fn insert_then_remove_is_identity(a in ids(), x in 0u32..200) {
        let sa = to_nodeset(&a);
        let mut s = sa.clone();
        let id = NodeId::new(x);
        let was_present = s.contains(id);
        s.insert(id);
        if !was_present {
            s.remove(id);
        }
        prop_assert_eq!(s, sa);
    }
}
