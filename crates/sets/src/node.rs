use std::fmt;

/// Identifier of a node (player) in a network.
///
/// Node ids are small dense integers assigned by the graph that owns them;
/// they index adjacency tables and bit positions in [`NodeSet`]s.
///
/// # Example
///
/// ```
/// use rmt_sets::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "v3");
/// ```
///
/// [`NodeSet`]: crate::NodeSet
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its raw integer value.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the raw integer value, usable as an array index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let v = NodeId::new(42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(NodeId::from(42u32), v);
        assert_eq!(usize::from(v), 42);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(7), NodeId::new(7));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", NodeId::new(0)), "v0");
        assert_eq!(format!("{:?}", NodeId::new(0)), "NodeId(0)");
    }
}
