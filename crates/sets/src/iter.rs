use crate::node::NodeId;
use crate::nodeset::NodeSet;

/// Iterator over the members of a [`NodeSet`] in ascending id order.
///
/// Produced by [`NodeSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> Iter<'a> {
    pub(crate) fn new(words: &'a [u64]) -> Self {
        Iter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(NodeId::new((self.word_idx * 64 + bit) as u32))
    }
}

/// Iterator over **all** subsets of a [`NodeSet`].
///
/// Produced by [`NodeSet::subsets`]. The enumeration maps a counter
/// `0..2^k` onto the `k` members of the base set, so it starts with the
/// empty set and ends with the base set itself, and subsets with the same
/// low-order members are adjacent.
#[derive(Clone, Debug)]
pub struct Subsets {
    elements: Vec<NodeId>,
    next_mask: u64,
    end_mask: u64,
}

impl Subsets {
    pub(crate) fn new(base: &NodeSet) -> Self {
        let elements = base.to_vec();
        assert!(
            elements.len() <= 62,
            "subset enumeration over {} elements is infeasible (max 62)",
            elements.len()
        );
        Subsets {
            end_mask: 1u64 << elements.len(),
            elements,
            next_mask: 0,
        }
    }
}

impl Iterator for Subsets {
    type Item = NodeSet;

    fn next(&mut self) -> Option<NodeSet> {
        if self.next_mask >= self.end_mask {
            return None;
        }
        let mask = self.next_mask;
        self.next_mask += 1;
        let mut s = NodeSet::new();
        let mut rem = mask;
        while rem != 0 {
            let i = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            s.insert(self.elements[i]);
        }
        Some(s)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end_mask - self.next_mask) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Subsets {}

/// Iterator over the `k`-element subsets of a [`NodeSet`].
///
/// Produced by [`NodeSet::combinations`]. Subsets are produced in
/// lexicographic order of their sorted member lists.
#[derive(Clone, Debug)]
pub struct Combinations {
    elements: Vec<NodeId>,
    indices: Vec<usize>,
    done: bool,
}

impl Combinations {
    pub(crate) fn new(base: &NodeSet, k: usize) -> Self {
        let elements = base.to_vec();
        let done = k > elements.len();
        Combinations {
            indices: (0..k).collect(),
            elements,
            done,
        }
    }
}

impl Iterator for Combinations {
    type Item = NodeSet;

    fn next(&mut self) -> Option<NodeSet> {
        if self.done {
            return None;
        }
        let out: NodeSet = self.indices.iter().map(|&i| self.elements[i]).collect();
        // Advance to the next lexicographic index combination.
        let k = self.indices.len();
        let n = self.elements.len();
        if k == 0 {
            self.done = true;
            return Some(out);
        }
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.indices[i] != i + n - k {
                self.indices[i] += 1;
                for j in i + 1..k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn subsets_enumerates_the_whole_power_set() {
        let base = set(&[1, 5, 70]);
        let all: Vec<NodeSet> = base.subsets().collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], NodeSet::new());
        assert_eq!(all[7], base);
        // All distinct and all subsets of the base.
        let distinct: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(distinct.len(), 8);
        assert!(all.iter().all(|s| s.is_subset(&base)));
    }

    #[test]
    fn subsets_of_empty_is_just_empty() {
        let all: Vec<NodeSet> = NodeSet::new().subsets().collect();
        assert_eq!(all, vec![NodeSet::new()]);
    }

    #[test]
    fn subsets_size_hint_is_exact() {
        let base = set(&[0, 1, 2, 3]);
        let it = base.subsets();
        assert_eq!(it.len(), 16);
    }

    #[test]
    fn combinations_counts_binomials() {
        let base = set(&[0, 1, 2, 3, 4]);
        assert_eq!(base.combinations(0).count(), 1);
        assert_eq!(base.combinations(2).count(), 10);
        assert_eq!(base.combinations(5).count(), 1);
        assert_eq!(base.combinations(6).count(), 0);
        assert!(base
            .combinations(2)
            .all(|s| s.len() == 2 && s.is_subset(&base)));
    }

    #[test]
    fn combinations_are_distinct() {
        let base = set(&[2, 3, 64, 65]);
        let all: std::collections::HashSet<_> = base.combinations(2).collect();
        assert_eq!(all.len(), 6);
    }
}
