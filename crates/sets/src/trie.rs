//! A set-trie over [`NodeSet`]s: the compressed backend for antichains.
//!
//! Stored sets are paths of strictly ascending node ids, so families whose
//! members share prefixes (threshold structures, restrictions of one global
//! structure) share trie nodes instead of repeating whole bitsets. The two
//! queries an antichain needs — *is some stored set a superset of q?* and
//! *remove every stored subset of q* — both prune on the ascending-id order
//! and never touch branches outside `q`'s id range, which is what makes
//! subsumption-checked insertion cheaper than a linear scan once the family
//! is large.

use crate::{NodeId, NodeSet};

/// A trie of node sets keyed by their ascending id sequences.
///
/// `SetTrie` stores an *antichain-agnostic* collection of distinct sets; the
/// antichain discipline (no stored set contains another) is what
/// [`SetTrie::insert_maximal`] maintains on top of the raw
/// [`SetTrie::insert`]. The empty set is never stored.
///
/// # Example
///
/// ```
/// use rmt_sets::{NodeSet, SetTrie};
///
/// let mut t = SetTrie::new();
/// t.insert_maximal(&[0u32, 1].into_iter().collect::<NodeSet>());
/// t.insert_maximal(&[0u32].into_iter().collect::<NodeSet>()); // subsumed, ignored
/// t.insert_maximal(&[2u32].into_iter().collect::<NodeSet>());
/// assert_eq!(t.len(), 2);
/// assert!(t.contains_superset(&[1u32].into_iter().collect::<NodeSet>()));
/// assert!(!t.contains_superset(&[1u32, 2].into_iter().collect::<NodeSet>()));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SetTrie {
    root: Node,
    len: usize,
}

#[derive(Clone, Debug, Default)]
struct Node {
    /// Children sorted by id; every child's subtree contains a terminal.
    children: Vec<(u32, Node)>,
    /// `true` iff the id path from the root to this node is a stored set.
    terminal: bool,
}

impl SetTrie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        SetTrie::default()
    }

    /// Number of stored sets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no set is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of trie nodes (root excluded): the compressed size of the
    /// family, as opposed to `Σ|set|` for an explicit list.
    pub fn node_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            node.children.len() + node.children.iter().map(|(_, c)| count(c)).sum::<usize>()
        }
        count(&self.root)
    }

    /// Inserts `set` verbatim (no subsumption checks). Returns `true` if it
    /// was not already stored. The empty set is rejected.
    pub fn insert(&mut self, set: &NodeSet) -> bool {
        if set.is_empty() {
            return false;
        }
        let mut node = &mut self.root;
        for v in set {
            let id = v.raw();
            let pos = match node.children.binary_search_by_key(&id, |(k, _)| *k) {
                Ok(pos) => pos,
                Err(pos) => {
                    node.children.insert(pos, (id, Node::default()));
                    pos
                }
            };
            node = &mut node.children[pos].1;
        }
        if node.terminal {
            return false;
        }
        node.terminal = true;
        self.len += 1;
        true
    }

    /// Returns `true` if some stored set is a superset of `set` (equality
    /// included). For the empty set this asks whether *anything* is stored.
    pub fn contains_superset(&self, set: &NodeSet) -> bool {
        if self.len == 0 {
            return false;
        }
        if set.is_empty() {
            return true;
        }
        let ids: Vec<u32> = set.iter().map(NodeId::raw).collect();
        exists_superset(&self.root, &ids)
    }

    /// Removes every stored subset of `set` (equality included) and returns
    /// how many sets were removed.
    pub fn remove_subsets(&mut self, set: &NodeSet) -> usize {
        let ids: Vec<u32> = set.iter().map(NodeId::raw).collect();
        let removed = remove_subsets(&mut self.root, &ids);
        self.len -= removed;
        removed
    }

    /// Antichain insert: a no-op if a stored superset of `set` exists,
    /// otherwise removes every stored subset and inserts `set`. Returns
    /// `true` if the trie changed. The empty set is never stored (it is the
    /// implied member of every monotone family).
    pub fn insert_maximal(&mut self, set: &NodeSet) -> bool {
        if set.is_empty() || self.contains_superset(set) {
            return false;
        }
        self.remove_subsets(set);
        self.insert(set)
    }

    /// The stored sets, in canonical [`NodeSet`] order.
    pub fn to_sorted_sets(&self) -> Vec<NodeSet> {
        let mut out = Vec::with_capacity(self.len);
        let mut path = NodeSet::new();
        collect(&self.root, &mut path, &mut out);
        out.sort();
        out
    }
}

fn exists_superset(node: &Node, ids: &[u32]) -> bool {
    let Some(&next) = ids.first() else {
        // Every node's subtree contains a terminal (children are pruned when
        // emptied), so reaching here with all query ids matched is a hit.
        return true;
    };
    for (id, child) in &node.children {
        if *id > next {
            // Children are sorted ascending and paths ascend too: no set
            // below can still contain `next`.
            return false;
        }
        let rest = if *id == next { &ids[1..] } else { ids };
        if exists_superset(child, rest) {
            return true;
        }
    }
    false
}

fn remove_subsets(node: &mut Node, ids: &[u32]) -> usize {
    let mut removed = 0;
    node.children.retain_mut(|(id, child)| {
        // Only branches whose id occurs in the query can hold subsets.
        match ids.binary_search(id) {
            Ok(pos) => {
                if child.terminal {
                    child.terminal = false;
                    removed += 1;
                }
                removed += remove_subsets(child, &ids[pos + 1..]);
                child.terminal || !child.children.is_empty()
            }
            Err(_) => true,
        }
    });
    removed
}

fn collect(node: &Node, path: &mut NodeSet, out: &mut Vec<NodeSet>) {
    if node.terminal {
        out.push(path.clone());
    }
    for (id, child) in &node.children {
        let v = NodeId::new(*id);
        path.insert(v);
        collect(child, path, out);
        path.remove(v);
    }
}

impl Extend<NodeSet> for SetTrie {
    fn extend<I: IntoIterator<Item = NodeSet>>(&mut self, iter: I) {
        for set in iter {
            self.insert_maximal(&set);
        }
    }
}

impl FromIterator<NodeSet> for SetTrie {
    fn from_iter<I: IntoIterator<Item = NodeSet>>(iter: I) -> Self {
        let mut t = SetTrie::new();
        t.extend(iter);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn empty_trie_has_no_supersets() {
        let t = SetTrie::new();
        assert!(t.is_empty());
        assert!(!t.contains_superset(&NodeSet::new()));
        assert!(!t.contains_superset(&set(&[0])));
    }

    #[test]
    fn insert_rejects_empty_and_duplicates() {
        let mut t = SetTrie::new();
        assert!(!t.insert(&NodeSet::new()));
        assert!(t.insert(&set(&[1, 3])));
        assert!(!t.insert(&set(&[1, 3])));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn superset_query_skips_and_matches() {
        let t: SetTrie = [set(&[0, 2, 5]), set(&[1, 3])].into_iter().collect();
        assert!(t.contains_superset(&set(&[2, 5])));
        assert!(t.contains_superset(&set(&[0])));
        assert!(t.contains_superset(&set(&[3])));
        assert!(t.contains_superset(&NodeSet::new()));
        assert!(!t.contains_superset(&set(&[0, 3])));
        assert!(!t.contains_superset(&set(&[4])));
        assert!(!t.contains_superset(&set(&[2, 5, 7])));
    }

    #[test]
    fn remove_subsets_prunes_branches() {
        let mut t: SetTrie = [set(&[0]), set(&[0, 1]), set(&[2]), set(&[1, 2])]
            .into_iter()
            .collect();
        // FromIterator runs insert_maximal, so {0} was subsumed by {0,1}
        // and {2} by {1,2}.
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove_subsets(&set(&[0, 1, 2])), 2);
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn insert_maximal_keeps_an_antichain() {
        let mut t = SetTrie::new();
        assert!(t.insert_maximal(&set(&[0, 1])));
        assert!(!t.insert_maximal(&set(&[0]))); // subsumed
        assert!(!t.insert_maximal(&set(&[0, 1]))); // duplicate
        assert!(t.insert_maximal(&set(&[2])));
        assert!(t.insert_maximal(&set(&[0, 1, 2]))); // supersedes both
        assert_eq!(t.to_sorted_sets(), vec![set(&[0, 1, 2])]);
    }

    #[test]
    fn sorted_sets_use_canonical_nodeset_order() {
        // DFS order (lexicographic on ascending id paths) differs from the
        // numeric NodeSet order: {0,5} comes before {1} in DFS but after it
        // canonically.
        let t: SetTrie = [set(&[0, 5]), set(&[1]), set(&[4])].into_iter().collect();
        let sorted = t.to_sorted_sets();
        let mut expected = vec![set(&[0, 5]), set(&[1]), set(&[4])];
        expected.sort();
        assert_eq!(sorted, expected);
        assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn node_count_reflects_prefix_sharing() {
        let t: SetTrie = [set(&[0, 1, 2]), set(&[0, 1, 3])].into_iter().collect();
        // Shared prefix 0→1, then two leaves: 4 nodes, not 6.
        assert_eq!(t.node_count(), 4);
    }
}
