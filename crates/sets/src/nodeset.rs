use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::FromIterator;
use std::ops::{BitAnd, BitOr, BitXor, Sub};

use crate::iter::{Combinations, Iter, Subsets};
use crate::node::NodeId;

const WORD_BITS: usize = 64;

/// A set of [`NodeId`]s stored as a growable bitset.
///
/// `NodeSet` is the workhorse value type of the workspace: corruption sets,
/// cuts, neighbourhoods, components and view domains are all `NodeSet`s.
/// Values are kept *normalized* (no trailing zero words), so `Eq`, `Ord` and
/// `Hash` agree with mathematical set equality regardless of construction
/// history.
///
/// The order given by `Ord` is the numeric order of the characteristic
/// vector (sets are compared as binary numbers, highest element first). It is
/// an arbitrary but deterministic total order used to keep collections of
/// sets canonically sorted.
///
/// # Example
///
/// ```
/// use rmt_sets::NodeSet;
///
/// let mut s = NodeSet::new();
/// s.insert(3u32.into());
/// s.insert(100u32.into());
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(100u32.into()));
/// assert_eq!(s.to_string(), "{v3, v100}");
/// ```
#[derive(Clone, Default)]
pub struct NodeSet {
    /// Invariant: the last word, if any, is non-zero.
    words: Vec<u64>,
}

impl NodeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        NodeSet { words: Vec::new() }
    }

    /// Creates an empty set with capacity for nodes `0..n` without
    /// reallocating.
    pub fn with_capacity(n: usize) -> Self {
        NodeSet {
            words: Vec::with_capacity(n.div_ceil(WORD_BITS)),
        }
    }

    /// Creates the set containing exactly one node.
    pub fn singleton(id: NodeId) -> Self {
        let mut s = NodeSet::new();
        s.insert(id);
        s
    }

    /// Creates the full universe `{0, 1, …, n-1}`.
    ///
    /// # Example
    ///
    /// ```
    /// use rmt_sets::NodeSet;
    /// assert_eq!(NodeSet::universe(130).len(), 130);
    /// ```
    pub fn universe(n: usize) -> Self {
        let mut words = vec![u64::MAX; n / WORD_BITS];
        let rem = n % WORD_BITS;
        if rem != 0 {
            words.push((1u64 << rem) - 1);
        }
        let mut s = NodeSet { words };
        s.normalize();
        s
    }

    /// Returns the number of nodes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Returns `true` if `id` is a member.
    pub fn contains(&self, id: NodeId) -> bool {
        let (w, b) = (id.index() / WORD_BITS, id.index() % WORD_BITS);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Inserts `id`; returns `true` if it was not already present.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let (w, b) = (id.index() / WORD_BITS, id.index() % WORD_BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (w, b) = (id.index() / WORD_BITS, id.index() % WORD_BITS);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        if had {
            self.normalize();
        }
        had
    }

    /// Removes all nodes.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Returns the smallest member, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.words.iter().enumerate().find_map(|(i, &w)| {
            (w != 0).then(|| NodeId::new((i * WORD_BITS + w.trailing_zeros() as usize) as u32))
        })
    }

    /// Returns the largest member, if any.
    pub fn last(&self) -> Option<NodeId> {
        let (i, &w) = self.words.iter().enumerate().next_back()?;
        Some(NodeId::new(
            (i * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize)) as u32,
        ))
    }

    /// Returns the union `self ∪ other` as a new set.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place union: `self ← self ∪ other`.
    pub fn union_with(&mut self, other: &NodeSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns the intersection `self ∩ other` as a new set.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// In-place intersection: `self ← self ∩ other`.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        self.words.truncate(other.words.len());
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        self.normalize();
    }

    /// Returns the difference `self ∖ other` as a new set.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// In-place difference: `self ← self ∖ other`.
    pub fn difference_with(&mut self, other: &NodeSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        self.normalize();
    }

    /// Returns the symmetric difference `self △ other` as a new set.
    pub fn symmetric_difference(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        if other.words.len() > out.words.len() {
            out.words.resize(other.words.len(), 0);
        }
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
        out.normalize();
        out
    }

    /// Returns `true` if `self ⊆ other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        if self.words.len() > other.words.len() {
            return false;
        }
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if `self ⊇ other`.
    pub fn is_superset(&self, other: &NodeSet) -> bool {
        other.is_subset(self)
    }

    /// Returns `true` if the sets share no element.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over the members in ascending id order.
    pub fn iter(&self) -> Iter<'_> {
        Iter::new(&self.words)
    }

    /// Enumerates **all** subsets of this set, in an arbitrary but
    /// deterministic order that begins with the empty set and ends with the
    /// full set.
    ///
    /// This powers the exhaustive cut/cover searches in `rmt-core`.
    ///
    /// # Panics
    ///
    /// Panics if the set has more than 62 elements (the enumeration would not
    /// terminate in any reasonable time anyway).
    pub fn subsets(&self) -> Subsets {
        Subsets::new(self)
    }

    /// The number of subsets [`NodeSet::subsets`] enumerates: `2^len`.
    ///
    /// # Panics
    ///
    /// Panics if the set has more than 62 elements, like [`NodeSet::subsets`].
    pub fn subset_count(&self) -> u64 {
        let k = self.len();
        assert!(
            k <= 62,
            "subset enumeration over {k} elements is infeasible (max 62)"
        );
        1u64 << k
    }

    /// The subset at position `index` of the [`NodeSet::subsets`]
    /// enumeration: bit `i` of `index` selects the `i`-th smallest member.
    ///
    /// Random access into the enumeration is what lets parallel searches
    /// jump anywhere in subset space while agreeing index-for-index with the
    /// sequential iterator:
    /// `base.subsets().nth(i) == Some(base.subset_at(i as u64))`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.subset_count()` (which also enforces the
    /// 62-element enumeration limit).
    pub fn subset_at(&self, index: u64) -> NodeSet {
        assert!(
            index < self.subset_count(),
            "subset index {index} out of range"
        );
        let mut out = NodeSet::new();
        for (i, member) in self.iter().enumerate() {
            if index >> i == 0 {
                break;
            }
            if index & (1 << i) != 0 {
                out.insert(member);
            }
        }
        out
    }

    /// Enumerates the subsets of this set having exactly `k` elements.
    pub fn combinations(&self, k: usize) -> Combinations {
        Combinations::new(self, k)
    }

    /// Collects the members into a `Vec` in ascending order.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }

    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl PartialEq for NodeSet {
    fn eq(&self, other: &Self) -> bool {
        self.words == other.words
    }
}

impl Eq for NodeSet {}

impl Hash for NodeSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.words.hash(state);
    }
}

impl PartialOrd for NodeSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodeSet {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare as big integers: longer (normalized) word vectors are
        // larger; equal lengths compare from the most significant word.
        self.words
            .len()
            .cmp(&other.words.len())
            .then_with(|| self.words.iter().rev().cmp(other.words.iter().rev()))
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|v| v.raw())).finish()
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::new();
        s.extend(iter);
        s
    }
}

impl FromIterator<u32> for NodeSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        iter.into_iter().map(NodeId::new).collect()
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl BitOr for &NodeSet {
    type Output = NodeSet;
    fn bitor(self, rhs: &NodeSet) -> NodeSet {
        self.union(rhs)
    }
}

impl BitAnd for &NodeSet {
    type Output = NodeSet;
    fn bitand(self, rhs: &NodeSet) -> NodeSet {
        self.intersection(rhs)
    }
}

impl Sub for &NodeSet {
    type Output = NodeSet;
    fn sub(self, rhs: &NodeSet) -> NodeSet {
        self.difference(rhs)
    }
}

impl BitXor for &NodeSet {
    type Output = NodeSet;
    fn bitxor(self, rhs: &NodeSet) -> NodeSet {
        self.symmetric_difference(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.insert(NodeId::new(5)));
        assert!(!s.insert(NodeId::new(5)));
        assert!(s.contains(NodeId::new(5)));
        assert!(!s.contains(NodeId::new(4)));
        assert!(s.remove(NodeId::new(5)));
        assert!(!s.remove(NodeId::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn normalization_makes_eq_and_hash_structural() {
        use std::collections::hash_map::DefaultHasher;
        let mut a = NodeSet::new();
        a.insert(NodeId::new(200));
        a.remove(NodeId::new(200));
        a.insert(NodeId::new(1));
        let b = set(&[1]);
        assert_eq!(a, b);
        let hash = |s: &NodeSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn boolean_algebra_on_crossing_word_boundaries() {
        let a = set(&[0, 63, 64, 130]);
        let b = set(&[63, 64, 200]);
        assert_eq!(a.union(&b), set(&[0, 63, 64, 130, 200]));
        assert_eq!(a.intersection(&b), set(&[63, 64]));
        assert_eq!(a.difference(&b), set(&[0, 130]));
        assert_eq!(a.symmetric_difference(&b), set(&[0, 130, 200]));
    }

    #[test]
    fn operators_match_methods() {
        let a = set(&[1, 2, 3]);
        let b = set(&[3, 4]);
        assert_eq!(&a | &b, a.union(&b));
        assert_eq!(&a & &b, a.intersection(&b));
        assert_eq!(&a - &b, a.difference(&b));
        assert_eq!(&a ^ &b, a.symmetric_difference(&b));
    }

    #[test]
    fn subset_superset_disjoint() {
        let a = set(&[1, 2]);
        let b = set(&[1, 2, 70]);
        assert!(a.is_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(a.is_disjoint(&set(&[3, 71])));
        assert!(!a.is_disjoint(&b));
        assert!(NodeSet::new().is_subset(&a));
    }

    #[test]
    fn first_last_len() {
        let a = set(&[7, 64, 129]);
        assert_eq!(a.first(), Some(NodeId::new(7)));
        assert_eq!(a.last(), Some(NodeId::new(129)));
        assert_eq!(a.len(), 3);
        assert_eq!(NodeSet::new().first(), None);
        assert_eq!(NodeSet::new().last(), None);
    }

    #[test]
    fn universe_has_expected_members() {
        let u = NodeSet::universe(65);
        assert_eq!(u.len(), 65);
        assert!(u.contains(NodeId::new(0)));
        assert!(u.contains(NodeId::new(64)));
        assert!(!u.contains(NodeId::new(65)));
        assert!(NodeSet::universe(0).is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let a = set(&[130, 1, 64, 2]);
        let ids: Vec<u32> = a.iter().map(NodeId::raw).collect();
        assert_eq!(ids, vec![1, 2, 64, 130]);
    }

    #[test]
    fn ordering_is_total_and_numeric() {
        // {1} = 0b10 < {0,1} = 0b11 < {2} = 0b100
        assert!(set(&[1]) < set(&[0, 1]));
        assert!(set(&[0, 1]) < set(&[2]));
        assert!(set(&[63]) < set(&[64]));
        assert!(NodeSet::new() < set(&[0]));
    }

    #[test]
    fn subset_at_agrees_with_the_iterator() {
        let base = set(&[1, 5, 64, 70]);
        assert_eq!(base.subset_count(), 16);
        for (i, sub) in base.subsets().enumerate() {
            assert_eq!(base.subset_at(i as u64), sub, "index {i}");
        }
        assert_eq!(NodeSet::new().subset_count(), 1);
        assert_eq!(NodeSet::new().subset_at(0), NodeSet::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subset_at_rejects_out_of_range_indices() {
        set(&[0, 1]).subset_at(4);
    }

    #[test]
    fn display_formats_members() {
        assert_eq!(set(&[]).to_string(), "{}");
        assert_eq!(set(&[2, 0]).to_string(), "{v0, v2}");
        assert_eq!(format!("{:?}", set(&[2, 0])), "{0, 2}");
    }
}
