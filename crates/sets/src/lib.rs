//! Node identifiers, compact node-set bitsets, and subset enumeration.
//!
//! This crate is the set-algebra substrate of the `rmt` workspace. Every object
//! the RMT papers manipulate — corruption sets, cuts, views, components,
//! adversary structures — is ultimately a set of nodes, and the feasibility
//! characterizations require enumerating many of them. [`NodeSet`] is a
//! growable bitset tuned for those workloads:
//!
//! * set operations (`union`, `intersection`, `difference`) are word-parallel;
//! * values are kept in a normalized form (no trailing zero words) so that
//!   `Eq`/`Hash`/`Ord` behave like mathematical set equality;
//! * [`NodeSet::subsets`] and [`NodeSet::combinations`] drive the exhaustive
//!   cut and cover searches in `rmt-core`.
//!
//! # Example
//!
//! ```
//! use rmt_sets::{NodeId, NodeSet};
//!
//! let a: NodeSet = [0u32, 2, 5].into_iter().collect();
//! let b: NodeSet = [2u32, 3].into_iter().collect();
//! assert_eq!(a.intersection(&b), NodeSet::singleton(NodeId::new(2)));
//! assert!(a.intersection(&b).is_subset(&a));
//! assert_eq!(a.union(&b).len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod iter;
mod node;
mod nodeset;
mod trie;

pub use iter::{Combinations, Iter, Subsets};
pub use node::NodeId;
pub use nodeset::NodeSet;
pub use trie::SetTrie;
