//! The differential gates of the fault-injecting scheduler.
//!
//! 1. **Transparency**: with an *empty* [`FaultPlan`] the `NetRunner` is
//!    byte-identical to `rmt-sim`'s synchronous `Runner` — same event
//!    stream, same [`Metrics`], same delivery log, same decisions — across
//!    the E2 instance family (random partial-knowledge instances running
//!    real RMT-PKA under every implemented Byzantine attack).
//! 2. **Determinism**: a *faulty* run is a pure function of
//!    `(instance, plan)` — repeating a seed sweep at 1, 2 and 8 threads via
//!    `rmt-par` yields bit-identical event streams, metrics and fault
//!    statistics.

use rmt_core::protocols::attacks::{pka_adversary, PKA_ATTACKS};
use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_core::sampling::random_instance_nonadjacent;
use rmt_core::Instance;
use rmt_graph::generators::seeded;
use rmt_graph::ViewKind;
use rmt_net::{FaultPlan, LinkPolicy, NetRunner};
use rmt_obs::{RunEvent, VecObserver};
use rmt_sets::NodeSet;
use rmt_sim::Runner;

/// The E2 workload: random non-adjacent partial-knowledge instances over
/// both view kinds.
fn e2_instances(count: usize, seed: u64) -> Vec<Instance> {
    let mut rng = seeded(seed);
    (0..count)
        .map(|trial| {
            let n = 6 + trial % 4;
            let views = if trial.is_multiple_of(2) {
                ViewKind::AdHoc
            } else {
                ViewKind::Radius(2)
            };
            random_instance_nonadjacent(n, 0.35, views, 3, 2, &mut rng)
        })
        .collect()
}

/// Runs RMT-PKA on `inst` under `attack` through both schedulers (the
/// `NetRunner` under `plan`) and returns the paired observations.
#[allow(clippy::type_complexity)]
fn run_both(
    inst: &Instance,
    corrupted: NodeSet,
    attack: rmt_core::protocols::attacks::PkaAttack,
    plan: FaultPlan,
) -> (
    (Vec<RunEvent>, rmt_sim::Metrics, String),
    (Vec<RunEvent>, rmt_sim::Metrics, String),
) {
    let input = 7;
    let recv = inst.receiver();
    let watch = NodeSet::singleton(recv);

    let mut obs_sync = VecObserver::new();
    let sync = Runner::new(
        inst.graph().clone(),
        |v| RmtPka::node(inst, v, input),
        pka_adversary(inst, input, corrupted.clone(), attack, 11),
    )
    .watch(watch.clone())
    .run_observed(&mut obs_sync);

    let mut obs_net = VecObserver::new();
    let net = NetRunner::new(
        inst.graph().clone(),
        |v| RmtPka::node(inst, v, input),
        pka_adversary(inst, input, corrupted, attack, 11),
        plan,
    )
    .watch(watch)
    .run_observed(&mut obs_net);

    let log_sync = format!("{:?}", sync.delivered_to(recv));
    let log_net = format!("{:?}", net.delivered_to(recv));
    (
        (obs_sync.events, sync.metrics, log_sync),
        (obs_net.events, net.metrics, log_net),
    )
}

#[test]
fn empty_plan_is_byte_identical_to_the_synchronous_runner_on_e2() {
    let mut checked = 0usize;
    for inst in e2_instances(6, 0xE12_D1FF) {
        // Instances without a worst-case corruption run adversary-free —
        // still a differential workload, just a benign one.
        let corrupted = inst
            .worst_case_corruptions()
            .first()
            .cloned()
            .unwrap_or_default();
        for attack in PKA_ATTACKS {
            let (sync, net) = run_both(&inst, corrupted.clone(), attack, FaultPlan::new(99));
            assert_eq!(sync.0, net.0, "event streams diverge under {attack}");
            assert_eq!(sync.1, net.1, "metrics diverge under {attack}");
            assert_eq!(sync.2, net.2, "delivery logs diverge under {attack}");
            checked += 1;
        }
    }
    assert!(
        checked >= 20,
        "gate must exercise a real workload: {checked}"
    );
}

#[test]
fn empty_plan_preserves_all_decisions_on_e2() {
    let input = 7;
    for inst in e2_instances(6, 0xE12_DEC) {
        let corrupted = inst
            .worst_case_corruptions()
            .first()
            .cloned()
            .unwrap_or_default();
        let attack = PKA_ATTACKS[1]; // flip-value: actually perturbs traffic
        let sync = Runner::new(
            inst.graph().clone(),
            |v| RmtPka::node(&inst, v, input),
            pka_adversary(&inst, input, corrupted.clone(), attack, 5),
        )
        .run();
        let net = NetRunner::new(
            inst.graph().clone(),
            |v| RmtPka::node(&inst, v, input),
            pka_adversary(&inst, input, corrupted, attack, 5),
            FaultPlan::new(0),
        )
        .run();
        for v in inst.graph().nodes() {
            assert_eq!(sync.decision(v), net.decision(v), "node {v:?}");
        }
    }
}

/// One faulty run, fully serialized for bit comparison.
fn faulty_fingerprint(inst: &Instance, fault_seed: u64) -> String {
    let plan = FaultPlan::new(fault_seed).with_default_policy(LinkPolicy {
        drop: 0.15,
        delay: 0.3,
        max_delay: 2,
        duplicate: 0.1,
        reorder: true,
    });
    let corrupted = inst
        .worst_case_corruptions()
        .first()
        .cloned()
        .unwrap_or_default();
    let input = 7;
    let mut obs = VecObserver::new();
    let out = NetRunner::new(
        inst.graph().clone(),
        |v| RmtPka::node(inst, v, input),
        pka_adversary(inst, input, corrupted, PKA_ATTACKS[1], 5),
        plan,
    )
    .run_observed(&mut obs);
    format!(
        "{:?}|{:?}|{:?}|{:?}",
        obs.events,
        out.metrics,
        out.faults,
        out.decided()
    )
}

#[test]
fn faulty_runs_are_deterministic_across_thread_counts() {
    let instances = e2_instances(4, 0xE127);
    let sweep = |threads: usize| -> Vec<String> {
        let work: Vec<(usize, u64)> = (0..instances.len())
            .flat_map(|i| (0..3u64).map(move |s| (i, 0xFA0 + s)))
            .collect();
        rmt_par::parallel_map(work, threads, |(i, seed)| {
            faulty_fingerprint(&instances[i], seed)
        })
    };
    let one = sweep(1);
    assert_eq!(one, sweep(2), "2 threads diverge from sequential");
    assert_eq!(one, sweep(8), "8 threads diverge from sequential");
    // And the sweep itself is non-trivial: faults actually fired somewhere.
    assert!(
        one.iter().any(|f| f.contains("dropped: ")),
        "fingerprints must include fault statistics"
    );
}
