//! Property tests for the fault model and the event-queue scheduler.

use proptest::prelude::*;
use rmt_graph::generators;
use rmt_net::{FaultPlan, FaultStats, LinkPolicy, NetRunner, Partition};
use rmt_obs::VecObserver;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{testing::Flood, Runner, SilentAdversary};

fn arb_policy() -> impl Strategy<Value = LinkPolicy> {
    (
        0.0f64..0.4,
        0.0f64..0.6,
        1u32..4,
        0.0f64..0.3,
        any::<bool>(),
    )
        .prop_map(|(drop, delay, max_delay, duplicate, reorder)| LinkPolicy {
            drop,
            delay,
            max_delay,
            duplicate,
            reorder,
        })
}

fn arb_setup() -> impl Strategy<Value = (usize, f64, u64)> {
    (4usize..10, 0.3f64..0.8, any::<u64>())
}

fn flood_from_zero(v: NodeId) -> Flood {
    Flood::new(v, (v.index() == 0).then_some(5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The scheduler under an empty plan agrees with the synchronous
    /// `Runner` on any connected random graph: identical event streams,
    /// metrics and decisions, and zero fault statistics.
    #[test]
    fn empty_plan_matches_runner_everywhere((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let corrupt = NodeSet::singleton(NodeId::new(1));
        let mut obs_sync = VecObserver::new();
        let sync = Runner::new(g.clone(), flood_from_zero, SilentAdversary::new(corrupt.clone()))
            .run_observed(&mut obs_sync);
        let mut obs_net = VecObserver::new();
        let net = NetRunner::new(
            g.clone(),
            flood_from_zero,
            SilentAdversary::new(corrupt),
            FaultPlan::new(seed),
        )
        .run_observed(&mut obs_net);
        prop_assert_eq!(&obs_sync.events, &obs_net.events);
        prop_assert_eq!(&sync.metrics, &net.metrics);
        prop_assert_eq!(&net.faults, &FaultStats::default());
        for v in g.nodes() {
            prop_assert_eq!(sync.decision(v), net.decision(v));
        }
    }

    /// Faulty runs are a pure function of `(graph, plan)`: re-running
    /// produces bit-identical event streams, metrics, fault statistics and
    /// decisions.
    #[test]
    fn faulty_runs_replay_bit_identically(
        (n, p, seed) in arb_setup(),
        policy in arb_policy(),
        fault_seed in any::<u64>(),
    ) {
        let run = || {
            let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
            let plan = FaultPlan::new(fault_seed).with_default_policy(policy);
            let mut obs = VecObserver::new();
            let out = NetRunner::new(
                g,
                flood_from_zero,
                SilentAdversary::new(NodeSet::new()),
                plan,
            )
            .run_observed(&mut obs);
            let decided = out.decided();
            (obs.events, out.metrics, out.faults, decided)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(a.3, b.3);
    }

    /// Observation is transparent for the faulty scheduler too: the noop
    /// path and the observed path agree on metrics, faults and decisions.
    #[test]
    fn observed_faulty_runs_match_unobserved(
        (n, p, seed) in arb_setup(),
        policy in arb_policy(),
        fault_seed in any::<u64>(),
    ) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let plan = FaultPlan::new(fault_seed).with_default_policy(policy);
        let plain = NetRunner::new(
            g.clone(),
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan.clone(),
        )
        .run();
        let mut obs = VecObserver::new();
        let observed = NetRunner::new(
            g.clone(),
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run_observed(&mut obs);
        prop_assert_eq!(&plain.metrics, &observed.metrics);
        prop_assert_eq!(&plain.faults, &observed.faults);
        for v in g.nodes() {
            prop_assert_eq!(plain.decision(v), observed.decision(v));
        }
        prop_assert!(!obs.events.is_empty());
    }

    /// Drops only ever remove traffic: every fault statistic is consistent
    /// with the metrics (a lost message was still sent and paid for), and a
    /// fully partitioned network delivers nothing across the cut.
    #[test]
    fn fault_accounting_is_consistent(
        (n, p, seed) in arb_setup(),
        policy in arb_policy(),
        fault_seed in any::<u64>(),
    ) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let plan = FaultPlan::new(fault_seed).with_default_policy(policy);
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run();
        let sent = out.metrics.honest_messages + out.metrics.adversarial_messages;
        prop_assert!(out.faults.lost() <= sent);
        prop_assert!(out.faults.max_observed_delay <= 3); // arb_policy bound
        if policy.duplicate == 0.0 {
            prop_assert_eq!(out.faults.duplicated, 0);
        }
    }

    /// A total partition isolates the two sides for its whole duration: if
    /// it never heals, no node across the cut ever decides.
    #[test]
    fn permanent_partition_blocks_the_far_side((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let side = NodeSet::singleton(NodeId::new(0));
        let plan = FaultPlan::new(seed).with_partition(Partition {
            from_round: 0,
            to_round: u32::MAX,
            side,
        });
        let out = NetRunner::new(
            g.clone(),
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run();
        prop_assert_eq!(out.decision(0.into()), Some(5)); // its own input
        for v in g.nodes().iter().filter(|v| v.index() != 0) {
            prop_assert_eq!(out.decision(v), None);
        }
    }
}
