//! Property tests for the fault model and the event-queue scheduler.

use proptest::prelude::*;
use rmt_graph::generators;
use rmt_net::{
    FaultPlan, FaultRng, FaultStats, LinkPolicy, MessageAdversary, NetRunner, Partition, Salt,
};
use rmt_obs::VecObserver;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{testing::Flood, Runner, SilentAdversary};

fn arb_policy() -> impl Strategy<Value = LinkPolicy> {
    (
        0.0f64..0.4,
        0.0f64..0.6,
        1u32..4,
        0.0f64..0.3,
        any::<bool>(),
    )
        .prop_map(|(drop, delay, max_delay, duplicate, reorder)| LinkPolicy {
            drop,
            delay,
            max_delay,
            duplicate,
            reorder,
        })
}

fn arb_setup() -> impl Strategy<Value = (usize, f64, u64)> {
    (4usize..10, 0.3f64..0.8, any::<u64>())
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        arb_policy(),
        proptest::collection::vec((0u32..8, 0u32..8, arb_policy()), 0..5),
        proptest::collection::vec((0u32..8, 0u32..6), 0..4),
        proptest::collection::vec(
            (0u32..4, 0u32..8, proptest::collection::vec(0u32..8, 0..5)),
            0..3,
        ),
    )
        .prop_map(|(seed, default_policy, links, crashes, partitions)| {
            let mut plan = FaultPlan::new(seed).with_default_policy(default_policy);
            for (f, t, p) in links {
                plan = plan.with_link(f.into(), t.into(), p);
            }
            for (v, r) in crashes {
                plan = plan.with_crash(v.into(), r);
            }
            for (from_round, len, side) in partitions {
                plan = plan.with_partition(Partition {
                    from_round,
                    to_round: from_round + len,
                    side: side.into_iter().collect(),
                });
            }
            plan
        })
}

fn flood_from_zero(v: NodeId) -> Flood {
    Flood::new(v, (v.index() == 0).then_some(5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The scheduler under an empty plan agrees with the synchronous
    /// `Runner` on any connected random graph: identical event streams,
    /// metrics and decisions, and zero fault statistics.
    #[test]
    fn empty_plan_matches_runner_everywhere((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let corrupt = NodeSet::singleton(NodeId::new(1));
        let mut obs_sync = VecObserver::new();
        let sync = Runner::new(g.clone(), flood_from_zero, SilentAdversary::new(corrupt.clone()))
            .run_observed(&mut obs_sync);
        let mut obs_net = VecObserver::new();
        let net = NetRunner::new(
            g.clone(),
            flood_from_zero,
            SilentAdversary::new(corrupt),
            FaultPlan::new(seed),
        )
        .run_observed(&mut obs_net);
        prop_assert_eq!(&obs_sync.events, &obs_net.events);
        prop_assert_eq!(&sync.metrics, &net.metrics);
        prop_assert_eq!(&net.faults, &FaultStats::default());
        for v in g.nodes() {
            prop_assert_eq!(sync.decision(v), net.decision(v));
        }
    }

    /// Faulty runs are a pure function of `(graph, plan)`: re-running
    /// produces bit-identical event streams, metrics, fault statistics and
    /// decisions.
    #[test]
    fn faulty_runs_replay_bit_identically(
        (n, p, seed) in arb_setup(),
        policy in arb_policy(),
        fault_seed in any::<u64>(),
    ) {
        let run = || {
            let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
            let plan = FaultPlan::new(fault_seed).with_default_policy(policy);
            let mut obs = VecObserver::new();
            let out = NetRunner::new(
                g,
                flood_from_zero,
                SilentAdversary::new(NodeSet::new()),
                plan,
            )
            .run_observed(&mut obs);
            let decided = out.decided();
            (obs.events, out.metrics, out.faults, decided)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(a.3, b.3);
    }

    /// Observation is transparent for the faulty scheduler too: the noop
    /// path and the observed path agree on metrics, faults and decisions.
    #[test]
    fn observed_faulty_runs_match_unobserved(
        (n, p, seed) in arb_setup(),
        policy in arb_policy(),
        fault_seed in any::<u64>(),
    ) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let plan = FaultPlan::new(fault_seed).with_default_policy(policy);
        let plain = NetRunner::new(
            g.clone(),
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan.clone(),
        )
        .run();
        let mut obs = VecObserver::new();
        let observed = NetRunner::new(
            g.clone(),
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run_observed(&mut obs);
        prop_assert_eq!(&plain.metrics, &observed.metrics);
        prop_assert_eq!(&plain.faults, &observed.faults);
        for v in g.nodes() {
            prop_assert_eq!(plain.decision(v), observed.decision(v));
        }
        prop_assert!(!obs.events.is_empty());
    }

    /// Drops only ever remove traffic: every fault statistic is consistent
    /// with the metrics (a lost message was still sent and paid for), and a
    /// fully partitioned network delivers nothing across the cut.
    #[test]
    fn fault_accounting_is_consistent(
        (n, p, seed) in arb_setup(),
        policy in arb_policy(),
        fault_seed in any::<u64>(),
    ) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let plan = FaultPlan::new(fault_seed).with_default_policy(policy);
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run();
        let sent = out.metrics.honest_messages + out.metrics.adversarial_messages;
        prop_assert!(out.faults.lost() <= sent);
        prop_assert!(out.faults.max_observed_delay <= 3); // arb_policy bound
        if policy.duplicate == 0.0 {
            prop_assert_eq!(out.faults.duplicated, 0);
        }
    }

    /// `FaultRng` is stateless: every draw is a pure function of
    /// `(seed, round, from, to, k, salt)`. Querying the same coordinates in
    /// reverse order, interleaved with arbitrary unrelated draws, yields
    /// bit-identical values — so a message's fate never depends on how much
    /// *other* traffic the network carried or in what order it was decided.
    #[test]
    fn fault_rng_decisions_depend_only_on_message_coordinates(
        seed in any::<u64>(),
        coords in proptest::collection::vec((0u32..64, 0u32..16, 0u32..16, 0u32..8), 1..40),
        noise in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
            0..20,
        ),
    ) {
        let salts = [
            Salt::Drop,
            Salt::Duplicate,
            Salt::Delay(0),
            Salt::DelayAmount(1),
            Salt::Sequence(2),
        ];
        let rng = FaultRng::new(seed);
        let forward: Vec<Vec<u64>> = coords
            .iter()
            .map(|&(r, f, t, k)| salts.iter().map(|&s| rng.draw(r, f, t, k, s)).collect())
            .collect();
        // Fresh source, reverse visit order, unrelated draws in between:
        // a stateful generator would diverge, a stateless one cannot.
        let replay = FaultRng::new(seed);
        let mut backward: Vec<Vec<u64>> = coords
            .iter()
            .rev()
            .map(|&(r, f, t, k)| {
                for &(nr, nf, nt, nk) in &noise {
                    let _ = replay.draw(nr, nf, nt, nk, Salt::Drop);
                    let _ = replay.unit(nr, nf, nt, nk, Salt::Duplicate);
                }
                salts.iter().map(|&s| replay.draw(r, f, t, k, s)).collect()
            })
            .collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
        for &(r, f, t, k) in &coords {
            let u = rng.unit(r, f, t, k, Salt::Drop);
            prop_assert!((0.0..1.0).contains(&u));
            prop_assert_eq!(u, rng.unit(r, f, t, k, Salt::Drop));
        }
    }

    /// Every constructible plan round-trips through JSON, and the encoding
    /// is canonical (encode → decode → encode is a textual fixpoint).
    #[test]
    fn plans_round_trip_through_json(plan in arb_plan()) {
        let text = plan.to_json().encode();
        let back = FaultPlan::from_json_str(&text).expect("self-encoded plans decode");
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.to_json().encode(), text);
    }

    /// A focused message adversary with budget covering all focus-touching
    /// traffic starves exactly its focus node: it never decides, and every
    /// lost message is billed to suppression.
    #[test]
    fn focused_suppression_starves_only_the_focus((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let target = NodeId::new(n as u32 - 1);
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            FaultPlan::new(seed),
        )
        .with_message_adversary(MessageAdversary::focused(
            10_000,
            NodeSet::singleton(target),
        ))
        .run();
        prop_assert_eq!(out.decision(target), None);
        prop_assert!(out.faults.suppressed > 0);
        prop_assert_eq!(out.faults.lost(), out.faults.suppressed);
    }

    /// A total partition isolates the two sides for its whole duration: if
    /// it never heals, no node across the cut ever decides.
    #[test]
    fn permanent_partition_blocks_the_far_side((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let side = NodeSet::singleton(NodeId::new(0));
        let plan = FaultPlan::new(seed).with_partition(Partition {
            from_round: 0,
            to_round: u32::MAX,
            side,
        });
        let out = NetRunner::new(
            g.clone(),
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run();
        prop_assert_eq!(out.decision(0.into()), Some(5)); // its own input
        for v in g.nodes().iter().filter(|v| v.index() != 0) {
            prop_assert_eq!(out.decision(v), None);
        }
    }
}
