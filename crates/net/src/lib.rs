//! Deterministic fault-injecting network layer for the RMT simulator.
//!
//! The paper's model is perfectly synchronous: a message sent in round `r`
//! arrives in round `r + 1`, always. This crate asks how far the protocols
//! survive *outside* that model by putting a faulty network between sender
//! and receiver while keeping everything else — protocols, Byzantine
//! adversaries, authenticity and edge enforcement — exactly as in `rmt-sim`:
//!
//! * [`FaultPlan`] / [`LinkPolicy`] / [`Partition`] — the declarative fault
//!   model: per-link drop, bounded delay, duplication and reordering
//!   probabilities, node crash-stops, transient partitions;
//! * [`FaultRng`] — the stateless SplitMix64-based decision source: every
//!   fault decision is a pure function of the message's coordinates, so runs
//!   are bit-reproducible from `(plan, protocol, adversary)`;
//! * [`NetRunner`] — the event-queue scheduler generalizing
//!   [`rmt_sim::Runner`]: delivery goes through a priority queue keyed
//!   `(deliver_round, seq)`, and with an *empty* plan the run is
//!   byte-identical to the synchronous scheduler (event stream, metrics,
//!   delivery log — enforced by the differential test suite);
//! * [`MessageAdversary`] — the budgeted message-adversary mode (after
//!   Albouy–Frey–Raynal–Taïani): each round it sees every admitted send and
//!   erases up to `d` adversarially chosen victims, composing with the
//!   probabilistic plan;
//! * [`NetOutcome`] / [`FaultStats`] / [`Termination`] — the run result:
//!   the usual decisions and [`rmt_sim::Metrics`], a separate account of
//!   what the network did, and whether the run quiesced or stalled at the
//!   round cap.
//!
//! Fault decisions are visible in the `rmt-obs` event stream as
//! `FaultDrop` / `FaultDelay` / `FaultDuplicate` / `NodeCrashed` events, so
//! traces of faulty runs replay and render like any other run.
//!
//! # Example
//!
//! Flooding survives a 30%-lossy network on a cycle (two disjoint routes):
//!
//! ```
//! use rmt_graph::generators;
//! use rmt_net::{FaultPlan, LinkPolicy, NetRunner};
//! use rmt_sets::NodeSet;
//! use rmt_sim::{testing::Flood, SilentAdversary};
//!
//! let plan = FaultPlan::new(1).with_default_policy(LinkPolicy {
//!     drop: 0.3,
//!     ..LinkPolicy::default()
//! });
//! let out = NetRunner::new(
//!     generators::cycle(6),
//!     |v| Flood::new(v, (v.index() == 0).then_some(42)),
//!     SilentAdversary::new(NodeSet::new()),
//!     plan,
//! )
//! .run();
//! assert_eq!(out.decision(3.into()), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod rng;
mod runner;
mod suppress;

pub use plan::{FaultPlan, LinkPolicy, Partition, PlanError};
/// Low-level JSON codec helpers (shared by downstream fixture formats,
/// e.g. `rmt-hunt`'s attack genomes).
pub mod codec {
    pub use crate::plan::{
        field, nodeset_from_json, nodeset_to_json, u32_from_json, u64_from_json, u64_to_json,
    };
}
pub use rng::{FaultRng, Salt};
pub use runner::{FaultStats, NetOutcome, NetRunner, Termination};
pub use suppress::MessageAdversary;
