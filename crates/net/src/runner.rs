//! The fault-injecting event-queue scheduler.
//!
//! [`NetRunner`] generalizes `rmt-sim`'s [`Runner`](rmt_sim::Runner): instead
//! of a single in-flight buffer swapped once per round, delivery goes through
//! a priority queue keyed `(deliver_round, seq, tie)`, so a [`FaultPlan`] can
//! stretch, duplicate or scramble delivery while the protocol and adversary
//! interfaces — and the physical model enforced by
//! [`Transport`](rmt_sim::Transport) — stay exactly those of the synchronous
//! scheduler. With an empty plan the queue degenerates to FIFO per round and
//! the run is byte-identical to `Runner` (event stream, metrics, delivery
//! log); the differential test in `tests/differential.rs` enforces this.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use rmt_graph::Graph;
use rmt_obs::{Clock, DropReason, NoopObserver, RunEvent, RunObserver};
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{
    default_max_rounds, emit_round_end, sweep_decisions, Adversary, DeliveryLog, Envelope, Metrics,
    NodeContext, Protocol, RoundInboxes, Transport,
};

use crate::plan::FaultPlan;
use crate::rng::{FaultRng, Salt};
use crate::suppress::MessageAdversary;

/// One enqueued message copy, ordered by `(deliver_round, seq, tie)`.
///
/// `seq` is the admission counter on in-order links and a seeded
/// pseudorandom draw on reordering links; `tie` is always the admission
/// counter, so ordering is total and deterministic either way.
struct Scheduled<P> {
    deliver_round: u32,
    seq: u64,
    tie: u64,
    env: Envelope<P>,
}

impl<P> Scheduled<P> {
    fn key(&self) -> (u32, u64, u64) {
        (self.deliver_round, self.seq, self.tie)
    }
}

impl<P> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<P> Eq for Scheduled<P> {}

impl<P> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for Scheduled<P> {
    // Reversed so std's max-heap pops the smallest key first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// What the network did to the run's traffic.
///
/// Kept separate from [`Metrics`] so the metrics of a faulty run stay
/// directly comparable to a fault-free run of the same workload (and so the
/// empty-plan differential gate can require `Metrics` equality outright).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages lost to a link's `drop` probability.
    pub dropped: u64,
    /// Messages lost to an active partition.
    pub partitioned: u64,
    /// Adversarial messages discarded because their sender had crashed.
    pub crashed_sender: u64,
    /// Message copies delivered late.
    pub delayed: u64,
    /// Extra copies injected by link duplication.
    pub duplicated: u64,
    /// Messages erased by the [`MessageAdversary`]'s per-round budget.
    pub suppressed: u64,
    /// The largest extra delay actually applied, in rounds.
    pub max_observed_delay: u32,
}

impl FaultStats {
    /// Total messages the network destroyed (all drop causes).
    pub fn lost(&self) -> u64 {
        self.dropped + self.partitioned + self.crashed_sender + self.suppressed
    }
}

/// How a run ended.
///
/// The hunter needs to tell liveness loss apart from wrong delivery, so the
/// scheduler reports *why* it stopped instead of folding round-cap
/// exhaustion into a generic non-decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// The network quiesced: after `round`, no traffic was left in flight.
    Quiesced {
        /// The last round that executed.
        round: u32,
    },
    /// The round cap was exhausted with traffic still queued: the run was
    /// cut off, not finished.
    Stalled {
        /// The round at which the cap hit.
        round: u32,
    },
}

/// The fault-injecting scheduler: [`Runner`](rmt_sim::Runner) semantics plus
/// a [`FaultPlan`] interpreted through an event queue.
///
/// The Byzantine [`Adversary`] composes with the faulty network: corrupted
/// nodes send through the same lossy links as honest ones, authenticity and
/// edge checks are still enforced by [`Transport`] *before* fault
/// injection, and a crashed corrupted node falls silent like a crashed
/// honest one.
pub struct NetRunner<Q: Protocol, A> {
    graph: Graph,
    protocols: Vec<Option<Q>>,
    adversary: A,
    plan: FaultPlan,
    suppressor: Option<MessageAdversary>,
    rng: FaultRng,
    max_rounds: u32,
    watch: NodeSet,
    profile: Option<Clock>,
}

/// The result of a completed faulty run.
pub struct NetOutcome<Q: Protocol> {
    protocols: Vec<Option<Q>>,
    corrupted: NodeSet,
    /// Complexity metrics, measured exactly as [`rmt_sim::Runner`] measures
    /// them (fault losses do *not* reduce send counts: a dropped message was
    /// still sent and paid for).
    pub metrics: Metrics,
    /// What the network did to the traffic.
    pub faults: FaultStats,
    /// Whether the run quiesced or hit the round cap with traffic queued.
    pub termination: Termination,
    watched: DeliveryLog<Q::Payload>,
}

impl<Q, A> NetRunner<Q, A>
where
    Q: Protocol,
    A: Adversary<Q::Payload>,
{
    /// Creates a runner on `graph` under `plan`; honest nodes get protocol
    /// instances from `make`, nodes in `adversary.corrupted()` are driven by
    /// the adversary.
    ///
    /// The default round cap is
    /// [`default_max_rounds`]` * (1 + plan.max_delay())`: stretching every
    /// hop by the worst-case delay must not silently truncate a run that
    /// would have quiesced.
    pub fn new(
        graph: Graph,
        mut make: impl FnMut(NodeId) -> Q,
        adversary: A,
        plan: FaultPlan,
    ) -> Self {
        let size = graph.nodes().last().map_or(0, |v| v.index() + 1);
        let mut protocols: Vec<Option<Q>> = (0..size).map(|_| None).collect();
        for v in graph.nodes() {
            if !adversary.corrupted().contains(v) {
                protocols[v.index()] = Some(make(v));
            }
        }
        let max_rounds =
            default_max_rounds(graph.node_count()).saturating_mul(1 + plan.max_delay());
        let rng = FaultRng::new(plan.seed());
        NetRunner {
            graph,
            protocols,
            adversary,
            plan,
            suppressor: None,
            rng,
            max_rounds,
            watch: NodeSet::new(),
            profile: None,
        }
    }

    /// Overrides the round limit.
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Attaches a [`MessageAdversary`]: each round it sees every admitted
    /// send (the full-information view) and erases its chosen victims, up
    /// to its budget, before the probabilistic fault pipeline runs.
    ///
    /// Composes with the [`FaultPlan`]: suppression and plan faults are
    /// accounted separately ([`FaultStats::suppressed`]).
    pub fn with_message_adversary(mut self, adversary: MessageAdversary) -> Self {
        self.suppressor = Some(adversary);
        self
    }

    /// Records every message delivered to the given nodes (retrievable via
    /// [`NetOutcome::delivered_to`]).
    pub fn watch(mut self, nodes: NodeSet) -> Self {
        self.watch = nodes;
        self
    }

    /// Enables per-round profiling, exactly as
    /// [`Runner::with_profiling`](rmt_sim::Runner::with_profiling): observed
    /// runs additionally emit one [`RunEvent::RoundEnd`] per round, whose
    /// `drops` field here carries the messages the network destroyed that
    /// round (crashes, partitions and link drops).
    ///
    /// Off by default, preserving the empty-plan byte-identity gate against
    /// the synchronous scheduler.
    pub fn with_profiling(mut self, clock: Clock) -> Self {
        self.profile = Some(clock);
        self
    }

    /// Executes the run to completion.
    pub fn run(self) -> NetOutcome<Q> {
        self.run_observed(&mut NoopObserver)
    }

    /// Executes the run to completion, streaming every observable step —
    /// including the network's fault decisions — through `observer`.
    pub fn run_observed<O: RunObserver>(mut self, observer: &mut O) -> NetOutcome<Q> {
        let size = self.protocols.len();
        let mut metrics = Metrics::default();
        let mut faults = FaultStats::default();
        let mut watched: DeliveryLog<Q::Payload> = HashMap::new();
        let mut decided = vec![false; size];
        let mut queue: BinaryHeap<Scheduled<Q::Payload>> = BinaryHeap::new();
        let mut next_tie: u64 = 0;
        let profile = if O::ACTIVE { self.profile.take() } else { None };
        let mut round_start_ns = profile.as_ref().map_or(0, Clock::now_ns);
        let mut wire_seen = (0u64, 0u64);
        let mut lost_seen = 0u64;

        if O::ACTIVE {
            let corrupted: Vec<u32> = self.adversary.corrupted().iter().map(NodeId::raw).collect();
            observer.on_event(&RunEvent::RunStart {
                nodes: self.graph.node_count() as u32,
                corrupted,
            });
            observer.on_event(&RunEvent::RoundStart { round: 0 });
        }
        self.emit_crashes(0, observer);

        // Round 0: initial sends. The whole round's admitted traffic is
        // buffered before injection so a message adversary sees the
        // full-information view; with identical admission order the queue
        // state is unchanged from per-batch injection.
        let mut edge_index: HashMap<(NodeId, NodeId), u32> = HashMap::new();
        let mut honest_this_round = 0u64;
        let mut outbox: Vec<Envelope<Q::Payload>> = Vec::new();
        for v in self.graph.nodes() {
            if self.plan.crashed(v, 0) {
                continue;
            }
            if let Some(proto) = self.protocols[v.index()].as_mut() {
                let ctx = NodeContext {
                    id: v,
                    round: 0,
                    neighbors: self.graph.neighbors(v).clone(),
                };
                let sends = proto.start(&ctx);
                outbox.extend(Transport::new(&self.graph).admit_honest(
                    0,
                    v,
                    sends,
                    &mut metrics,
                    &mut honest_this_round,
                    observer,
                ));
            }
        }
        let adversarial = self.adversary.start(&self.graph);
        outbox.extend(Transport::new(&self.graph).admit_adversarial(
            0,
            self.adversary.corrupted(),
            adversarial,
            &mut metrics,
            observer,
        ));
        let mask = suppression_mask(self.suppressor.as_ref(), 0, &outbox);
        inject(
            &self.plan,
            &self.rng,
            0,
            outbox,
            &mask,
            &mut edge_index,
            &mut queue,
            &mut next_tie,
            &mut faults,
            observer,
        );
        metrics.honest_messages_per_round.push(honest_this_round);
        if O::ACTIVE {
            sweep_decisions(&self.graph, &self.protocols, 0, &mut decided, observer);
        }
        if let Some(clock) = &profile {
            let lost = faults.lost();
            emit_round_end(
                0,
                clock,
                &mut round_start_ns,
                &metrics,
                &mut wire_seen,
                lost - lost_seen,
                observer,
            );
            lost_seen = lost;
        }

        for round in 1..=self.max_rounds {
            if queue.is_empty() {
                break;
            }
            metrics.rounds = round;
            if O::ACTIVE {
                observer.on_event(&RunEvent::RoundStart { round });
            }
            self.emit_crashes(round, observer);

            let mut delivered = RoundInboxes::new(size);
            while queue.peek().is_some_and(|s| s.deliver_round <= round) {
                let env = queue.pop().expect("peeked").env;
                if O::ACTIVE {
                    observer.on_event(&RunEvent::Delivery {
                        round,
                        from: env.from.raw(),
                        to: env.to.raw(),
                        payload: format!("{:?}", env.payload),
                    });
                }
                if self.watch.contains(env.to) {
                    watched
                        .entry(env.to)
                        .or_default()
                        .push((round, env.clone()));
                }
                delivered.push(env);
            }

            edge_index.clear();
            let mut honest_this_round = 0u64;
            let mut outbox: Vec<Envelope<Q::Payload>> = Vec::new();
            for v in self.graph.nodes() {
                if self.plan.crashed(v, round) {
                    continue;
                }
                if let Some(proto) = self.protocols[v.index()].as_mut() {
                    let ctx = NodeContext {
                        id: v,
                        round,
                        neighbors: self.graph.neighbors(v).clone(),
                    };
                    let sends = proto.on_round(&ctx, delivered.inbox(v));
                    outbox.extend(Transport::new(&self.graph).admit_honest(
                        round,
                        v,
                        sends,
                        &mut metrics,
                        &mut honest_this_round,
                        observer,
                    ));
                }
            }
            let adversarial = self.adversary.on_round(round, &self.graph, &delivered);
            outbox.extend(Transport::new(&self.graph).admit_adversarial(
                round,
                self.adversary.corrupted(),
                adversarial,
                &mut metrics,
                observer,
            ));
            let mask = suppression_mask(self.suppressor.as_ref(), round, &outbox);
            inject(
                &self.plan,
                &self.rng,
                round,
                outbox,
                &mask,
                &mut edge_index,
                &mut queue,
                &mut next_tie,
                &mut faults,
                observer,
            );
            metrics.honest_messages_per_round.push(honest_this_round);
            if O::ACTIVE {
                sweep_decisions(&self.graph, &self.protocols, round, &mut decided, observer);
            }
            if let Some(clock) = &profile {
                let lost = faults.lost();
                emit_round_end(
                    round,
                    clock,
                    &mut round_start_ns,
                    &metrics,
                    &mut wire_seen,
                    lost - lost_seen,
                    observer,
                );
                lost_seen = lost;
            }
        }

        if O::ACTIVE {
            observer.on_event(&RunEvent::RunEnd {
                rounds: metrics.rounds,
            });
        }

        let termination = if queue.is_empty() {
            Termination::Quiesced {
                round: metrics.rounds,
            }
        } else {
            Termination::Stalled {
                round: metrics.rounds,
            }
        };
        NetOutcome {
            protocols: self.protocols,
            corrupted: self.adversary.corrupted().clone(),
            metrics,
            faults,
            termination,
            watched,
        }
    }

    /// Emits a [`RunEvent::NodeCrashed`] for every node crashing exactly at
    /// `round`, in ascending node order, right after the round starts.
    fn emit_crashes<O: RunObserver>(&self, round: u32, observer: &mut O) {
        if O::ACTIVE {
            for v in self.plan.crashes_at(round) {
                observer.on_event(&RunEvent::NodeCrashed {
                    round,
                    node: v.raw(),
                });
            }
        }
    }
}

/// Computes the message adversary's victim mask over a round's buffered
/// admissions (empty when no suppressor is active this round).
fn suppression_mask<P>(
    suppressor: Option<&MessageAdversary>,
    round: u32,
    outbox: &[Envelope<P>],
) -> Vec<bool> {
    let Some(adv) = suppressor else {
        return Vec::new();
    };
    if !adv.active(round) || outbox.is_empty() {
        return Vec::new();
    }
    let coords: Vec<(NodeId, NodeId)> = outbox.iter().map(|e| (e.from, e.to)).collect();
    let mut mask = vec![false; outbox.len()];
    for i in adv.choose(round, &coords) {
        mask[i] = true;
    }
    mask
}

/// Runs admitted envelopes of send round `round` through the fault pipeline
/// and enqueues the surviving copies.
///
/// Pipeline per envelope: message-adversary suppression (`suppress[i]`,
/// chosen over the whole round's admissions) first, then each probabilistic
/// decision as an independent seeded draw keyed by the message's
/// coordinates: crashed sender → partition → drop → duplicate → per-copy
/// delay → enqueue. `edge_index` numbers the round's messages per directed
/// edge (the `k` coordinate of the draws); `next_tie` is the global
/// admission counter.
#[allow(clippy::too_many_arguments)]
fn inject<P, O>(
    plan: &FaultPlan,
    rng: &FaultRng,
    round: u32,
    envelopes: Vec<Envelope<P>>,
    suppress: &[bool],
    edge_index: &mut HashMap<(NodeId, NodeId), u32>,
    queue: &mut BinaryHeap<Scheduled<P>>,
    next_tie: &mut u64,
    faults: &mut FaultStats,
    observer: &mut O,
) where
    P: rmt_sim::Payload,
    O: RunObserver,
{
    for (idx, env) in envelopes.into_iter().enumerate() {
        let (from, to) = (env.from, env.to);
        let k = {
            let slot = edge_index.entry((from, to)).or_insert(0);
            let k = *slot;
            *slot += 1;
            k
        };
        let (f, t) = (from.raw(), to.raw());

        if suppress.get(idx).copied().unwrap_or(false) {
            faults.suppressed += 1;
            if O::ACTIVE {
                observer.on_event(&RunEvent::FaultDrop {
                    round,
                    from: f,
                    to: t,
                    reason: DropReason::Suppressed,
                });
            }
            continue;
        }
        if plan.crashed(from, round) {
            faults.crashed_sender += 1;
            if O::ACTIVE {
                observer.on_event(&RunEvent::FaultDrop {
                    round,
                    from: f,
                    to: t,
                    reason: DropReason::SenderCrashed,
                });
            }
            continue;
        }
        if plan.partitioned(from, to, round) {
            faults.partitioned += 1;
            if O::ACTIVE {
                observer.on_event(&RunEvent::FaultDrop {
                    round,
                    from: f,
                    to: t,
                    reason: DropReason::Partitioned,
                });
            }
            continue;
        }
        let policy = plan.policy(from, to);
        if policy.drop > 0.0 && rng.unit(round, f, t, k, Salt::Drop) < policy.drop {
            faults.dropped += 1;
            if O::ACTIVE {
                observer.on_event(&RunEvent::FaultDrop {
                    round,
                    from: f,
                    to: t,
                    reason: DropReason::LinkDrop,
                });
            }
            continue;
        }

        let copies = if policy.duplicate > 0.0
            && rng.unit(round, f, t, k, Salt::Duplicate) < policy.duplicate
        {
            2u32
        } else {
            1u32
        };
        for copy in 0..copies {
            let delay = if policy.delay > 0.0
                && policy.max_delay > 0
                && rng.unit(round, f, t, k, Salt::Delay(copy)) < policy.delay
            {
                1 + (rng.draw(round, f, t, k, Salt::DelayAmount(copy))
                    % u64::from(policy.max_delay)) as u32
            } else {
                0
            };
            let deliver_round = round + 1 + delay;
            if delay > 0 {
                faults.delayed += 1;
                faults.max_observed_delay = faults.max_observed_delay.max(delay);
            }
            if copy > 0 {
                faults.duplicated += 1;
            }
            if O::ACTIVE {
                if copy > 0 {
                    observer.on_event(&RunEvent::FaultDuplicate {
                        round,
                        from: f,
                        to: t,
                        deliver_round,
                    });
                } else if delay > 0 {
                    observer.on_event(&RunEvent::FaultDelay {
                        round,
                        from: f,
                        to: t,
                        delay,
                        deliver_round,
                    });
                }
            }
            let tie = *next_tie;
            *next_tie += 1;
            let seq = if policy.reorder {
                rng.draw(round, f, t, k, Salt::Sequence(copy))
            } else {
                tie
            };
            queue.push(Scheduled {
                deliver_round,
                seq,
                tie,
                env: env.clone(),
            });
        }
    }
}

impl<Q: Protocol> NetOutcome<Q> {
    /// The decision of node `v`, if it is honest and has decided.
    pub fn decision(&self, v: NodeId) -> Option<Q::Decision> {
        self.protocols
            .get(v.index())
            .and_then(Option::as_ref)
            .and_then(Protocol::decision)
    }

    /// The final protocol state of honest node `v`.
    pub fn protocol(&self, v: NodeId) -> Option<&Q> {
        self.protocols.get(v.index()).and_then(Option::as_ref)
    }

    /// The corrupted set of the run.
    pub fn corrupted(&self) -> &NodeSet {
        &self.corrupted
    }

    /// All honest nodes that decided, with their decisions.
    pub fn decided(&self) -> Vec<(NodeId, Q::Decision)> {
        self.protocols
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                p.as_ref()
                    .and_then(Protocol::decision)
                    .map(|d| (NodeId::new(i as u32), d))
            })
            .collect()
    }

    /// The messages delivered to a watched node, as `(round, envelope)`.
    ///
    /// Empty unless the node was passed to [`NetRunner::watch`].
    pub fn delivered_to(&self, v: NodeId) -> &[(u32, Envelope<Q::Payload>)] {
        self.watched.get(&v).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{LinkPolicy, Partition};
    use rmt_graph::generators;
    use rmt_sim::testing::Flood;
    use rmt_sim::SilentAdversary;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn flood_from_zero(v: NodeId) -> Flood {
        Flood::new(v, (v.index() == 0).then_some(7))
    }

    #[test]
    fn empty_plan_floods_like_the_synchronous_runner() {
        let g = generators::cycle(6);
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            FaultPlan::new(1),
        )
        .run();
        for v in 0..6u32 {
            assert_eq!(out.decision(v.into()), Some(7), "node {v}");
        }
        assert_eq!(out.faults, FaultStats::default());
        assert!(out.metrics.rounds <= 5);
    }

    #[test]
    fn total_loss_blocks_flooding() {
        let g = generators::path_graph(4);
        let plan = FaultPlan::new(3).with_default_policy(LinkPolicy {
            drop: 1.0,
            ..LinkPolicy::default()
        });
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run();
        assert_eq!(out.decision(0.into()), Some(7)); // its own input
        assert_eq!(out.decision(1.into()), None);
        assert!(out.faults.dropped > 0);
    }

    #[test]
    fn delay_postpones_but_does_not_lose_messages() {
        let g = generators::path_graph(3);
        let plan = FaultPlan::new(5).with_default_policy(LinkPolicy {
            delay: 1.0,
            max_delay: 3,
            ..LinkPolicy::default()
        });
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run();
        assert_eq!(out.decision(2.into()), Some(7));
        assert!(out.faults.delayed > 0);
        assert!(out.faults.max_observed_delay >= 1);
        assert!(out.metrics.rounds > 3, "delays must stretch the run");
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let g = generators::path_graph(2);
        let plan = FaultPlan::new(8).with_default_policy(LinkPolicy {
            duplicate: 1.0,
            ..LinkPolicy::default()
        });
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .watch(set(&[1]))
        .run();
        assert_eq!(out.decision(1.into()), Some(7));
        assert!(out.faults.duplicated > 0);
        // Node 1 got at least the original plus one copy of 0's message.
        assert!(out.delivered_to(1.into()).len() >= 2);
    }

    #[test]
    fn crashed_source_never_speaks() {
        let g = generators::path_graph(3);
        let plan = FaultPlan::new(0).with_crash(0.into(), 0);
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run();
        assert_eq!(out.decision(1.into()), None);
        assert_eq!(out.decision(2.into()), None);
        // Crashed honest nodes are skipped, not dropped mid-flight.
        assert_eq!(out.faults.crashed_sender, 0);
        assert_eq!(out.metrics.honest_messages_per_round[0], 0);
    }

    #[test]
    fn late_crash_stops_relaying() {
        let g = generators::path_graph(4); // 0-1-2-3, node 1 dies before relaying
        let plan = FaultPlan::new(0).with_crash(1.into(), 1);
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run();
        assert_eq!(out.decision(0.into()), Some(7));
        assert_eq!(out.decision(2.into()), None);
        assert_eq!(out.decision(3.into()), None);
    }

    #[test]
    fn partition_heals_and_flooding_resumes() {
        // 0-1 | 2-3 partitioned for rounds 0..=1; Flood keeps announcing
        // while its value is fresh? No — Flood sends once. So seed the value
        // late enough: partition rounds 0..=0 only delays nothing for a path
        // where the crossing hop happens in round 1. Use a cycle so a second
        // route exists and verify the partition statistic fires.
        let g = generators::path_graph(4);
        let plan = FaultPlan::new(0).with_partition(Partition {
            from_round: 0,
            to_round: 50,
            side: set(&[0, 1]),
        });
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run();
        assert_eq!(out.decision(1.into()), Some(7)); // same side
        assert_eq!(out.decision(2.into()), None); // across the cut
        assert!(out.faults.partitioned > 0);
    }

    #[test]
    fn crashed_corrupted_node_falls_silent() {
        let g = generators::path_graph(3); // corrupt 1, crash it at round 1
        let adv = rmt_sim::FnAdversary::<u64, _>::new(set(&[1]), |_, _, _| {
            vec![Envelope::new(1.into(), 2.into(), 9u64)]
        });
        let plan = FaultPlan::new(0).with_crash(1.into(), 1);
        let out = NetRunner::new(g, |v| Flood::new(v, None), adv, plan).run();
        // The round-0 injection goes through; later ones hit the crash.
        assert_eq!(out.decision(2.into()), Some(9));
        assert!(out.faults.crashed_sender > 0);
        assert!(out.metrics.adversarial_messages > out.faults.crashed_sender);
    }

    #[test]
    fn faulty_runs_are_reproducible() {
        let g = generators::cycle(8);
        let plan = FaultPlan::new(0xDECAF).with_default_policy(LinkPolicy {
            drop: 0.3,
            delay: 0.4,
            max_delay: 2,
            duplicate: 0.2,
            reorder: true,
        });
        let run = |g: Graph, plan: FaultPlan| {
            let mut obs = rmt_obs::VecObserver::new();
            let out = NetRunner::new(
                g,
                flood_from_zero,
                SilentAdversary::new(NodeSet::new()),
                plan,
            )
            .run_observed(&mut obs);
            (obs.events, out.metrics, out.faults)
        };
        let a = run(generators::cycle(8), plan.clone());
        let b = run(g, plan);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn profiled_faulty_runs_bill_drops_per_round() {
        let g = generators::path_graph(4);
        let plan = FaultPlan::new(3).with_default_policy(LinkPolicy {
            drop: 1.0,
            ..LinkPolicy::default()
        });
        let mut obs = rmt_obs::VecObserver::new();
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .with_profiling(Clock::virtual_ns(7))
        .run_observed(&mut obs);
        let (mut rounds_billed, mut drops_billed, mut msgs_billed) = (0u64, 0u64, 0u64);
        for ev in &obs.events {
            if let RunEvent::RoundEnd {
                ns,
                messages,
                drops,
                ..
            } = ev
            {
                rounds_billed += 1;
                drops_billed += drops;
                msgs_billed += messages;
                assert!(*ns > 0, "virtual clock always advances");
            }
        }
        assert!(rounds_billed > 0);
        assert_eq!(drops_billed, out.faults.lost());
        assert!(out.faults.dropped > 0);
        assert_eq!(msgs_billed, out.metrics.total_messages());
        // Unprofiled observed runs emit no RoundEnd (byte-identity gate).
        let mut plain = rmt_obs::VecObserver::new();
        let plan = FaultPlan::new(3).with_default_policy(LinkPolicy {
            drop: 1.0,
            ..LinkPolicy::default()
        });
        NetRunner::new(
            generators::path_graph(4),
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .run_observed(&mut plain);
        assert!(!plain
            .events
            .iter()
            .any(|ev| matches!(ev, RunEvent::RoundEnd { .. })));
    }

    #[test]
    fn quiesced_runs_report_their_last_round() {
        let g = generators::cycle(6);
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            FaultPlan::new(1),
        )
        .run();
        let Termination::Quiesced { round } = out.termination else {
            panic!("fault-free flood must quiesce, got {:?}", out.termination);
        };
        assert_eq!(round, out.metrics.rounds);
    }

    #[test]
    fn exhausted_round_cap_reports_stalled() {
        // Full delay keeps a message in flight past a tiny cap: the run is
        // cut off with traffic queued, which must surface as Stalled, not
        // as a silent non-decision.
        let g = generators::path_graph(4);
        let plan = FaultPlan::new(5).with_default_policy(LinkPolicy {
            delay: 1.0,
            max_delay: 6,
            ..LinkPolicy::default()
        });
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        )
        .with_max_rounds(2)
        .run();
        assert_eq!(out.termination, Termination::Stalled { round: 2 });
        assert_eq!(out.decision(3.into()), None);
    }

    #[test]
    fn focused_suppression_starves_the_focus_node() {
        // Path 0-1-2-3: every message into node 3 is suppressed, so 3 never
        // decides while everyone else floods normally.
        let g = generators::path_graph(4);
        let adv = MessageAdversary::focused(10, set(&[3]));
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            FaultPlan::new(0),
        )
        .with_message_adversary(adv)
        .run();
        assert_eq!(out.decision(2.into()), Some(7));
        assert_eq!(out.decision(3.into()), None);
        assert!(out.faults.suppressed > 0);
        assert_eq!(out.faults.lost(), out.faults.suppressed);
        assert!(matches!(out.termination, Termination::Quiesced { .. }));
    }

    #[test]
    fn suppression_budget_is_per_round() {
        // Cycle of 6, unfocused budget 1: at most one message dies per send
        // round, and every suppression is visible in the event stream. With
        // full information even this minimal budget defeats flooding — the
        // adversary keeps erasing the frontier message.
        let g = generators::cycle(6);
        let mut obs = rmt_obs::VecObserver::new();
        let out = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            FaultPlan::new(0),
        )
        .with_message_adversary(MessageAdversary::new(1))
        .run_observed(&mut obs);
        let mut per_round: HashMap<u32, u64> = HashMap::new();
        for ev in &obs.events {
            if let RunEvent::FaultDrop {
                round,
                reason: DropReason::Suppressed,
                ..
            } = ev
            {
                *per_round.entry(*round).or_insert(0) += 1;
            }
        }
        assert!(per_round.values().all(|&n| n <= 1), "budget is per round");
        assert_eq!(per_round.values().sum::<u64>(), out.faults.suppressed);
        assert!(out.faults.suppressed >= 1);
        assert_eq!(out.decision(0.into()), Some(7)); // its own input
        assert!(
            (0..6u32).any(|v| out.decision(v.into()).is_none()),
            "the frontier-chasing adversary must starve someone"
        );
    }

    #[test]
    fn transparent_suppressor_changes_nothing() {
        let run = |suppressor: Option<MessageAdversary>| {
            let mut obs = rmt_obs::VecObserver::new();
            let mut r = NetRunner::new(
                generators::cycle(5),
                flood_from_zero,
                SilentAdversary::new(NodeSet::new()),
                FaultPlan::new(9).with_default_policy(LinkPolicy {
                    drop: 0.2,
                    ..LinkPolicy::default()
                }),
            );
            if let Some(s) = suppressor {
                r = r.with_message_adversary(s);
            }
            let out = r.run_observed(&mut obs);
            (obs.events, out.metrics, out.faults)
        };
        let plain = run(None);
        let zero = run(Some(MessageAdversary::new(0)));
        let windowless = run(Some(MessageAdversary::new(3).with_window(900, 1000)));
        assert_eq!(plain, zero);
        assert_eq!(plain, windowless);
    }

    #[test]
    fn round_cap_scales_with_max_delay() {
        let g = generators::path_graph(3);
        let plan = FaultPlan::new(0).with_default_policy(LinkPolicy {
            delay: 1.0,
            max_delay: 4,
            ..LinkPolicy::default()
        });
        let r = NetRunner::new(
            g,
            flood_from_zero,
            SilentAdversary::new(NodeSet::new()),
            plan,
        );
        assert_eq!(r.max_rounds, default_max_rounds(3) * 5);
    }
}
