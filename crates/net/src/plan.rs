//! The declarative fault model: what the network may do to each message.
//!
//! A [`FaultPlan`] is pure data — a seed plus per-link policies, node
//! crashes and transient partitions. The `NetRunner` interprets it with the
//! stateless [`FaultRng`](crate::FaultRng), so a run is bit-reproducible
//! from `(plan, protocol, adversary)` alone, and the *empty* plan is
//! guaranteed transparent (the differential gate against `rmt-sim`'s
//! `Runner` checks this byte for byte).

use std::collections::HashMap;

use rmt_sets::{NodeId, NodeSet};

/// What one directed link may do to each message it carries.
///
/// Probabilities are evaluated per message with independent seeded draws;
/// the default policy (all zeros) is transparent — the link behaves like the
/// perfect synchronous channel of the paper's model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkPolicy {
    /// Probability the message is lost.
    pub drop: f64,
    /// Probability delivery is delayed beyond the synchronous `r + 1` bound.
    pub delay: f64,
    /// Maximum extra delay in rounds; a delayed message arrives at
    /// `r + 1 + d` with `d` uniform in `1..=max_delay`. Ignored while
    /// `delay` is zero.
    pub max_delay: u32,
    /// Probability a second copy of the message is enqueued (with its own
    /// independent delay draw).
    pub duplicate: f64,
    /// Scramble within-round delivery order: messages on this link get a
    /// seeded pseudorandom delivery sequence instead of send order, so a
    /// recipient's inbox no longer reflects the order in which its
    /// neighbours sent.
    pub reorder: bool,
}

impl Default for LinkPolicy {
    fn default() -> Self {
        LinkPolicy {
            drop: 0.0,
            delay: 0.0,
            max_delay: 0,
            duplicate: 0.0,
            reorder: false,
        }
    }
}

impl LinkPolicy {
    /// The perfect channel: no faults at all.
    pub fn transparent() -> Self {
        LinkPolicy::default()
    }

    /// `true` if this policy can never alter a message's fate.
    pub fn is_transparent(&self) -> bool {
        self.drop <= 0.0
            && (self.delay <= 0.0 || self.max_delay == 0)
            && self.duplicate <= 0.0
            && !self.reorder
    }

    /// The largest extra delay this policy can inject.
    pub fn effective_max_delay(&self) -> u32 {
        if self.delay > 0.0 {
            self.max_delay
        } else {
            0
        }
    }
}

/// A transient network partition: while active, messages *sent* in
/// `rounds` that cross between `side` and its complement are lost.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// First send round the partition affects.
    pub from_round: u32,
    /// Last send round the partition affects (inclusive).
    pub to_round: u32,
    /// One side of the split; the other side is everything else.
    pub side: NodeSet,
}

impl Partition {
    /// `true` if a message sent `from → to` in `round` crosses the split
    /// while it is active.
    pub fn cuts(&self, from: NodeId, to: NodeId, round: u32) -> bool {
        (self.from_round..=self.to_round).contains(&round)
            && self.side.contains(from) != self.side.contains(to)
    }
}

/// The full fault schedule of one run.
///
/// Built with the `with_*` combinators; an unmodified `FaultPlan::new(seed)`
/// is empty and therefore transparent.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    default_policy: LinkPolicy,
    links: HashMap<(NodeId, NodeId), LinkPolicy>,
    crashes: HashMap<NodeId, u32>,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// The empty (transparent) plan with the given fault seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The seed all fault draws derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Applies `policy` to every link without an explicit override.
    pub fn with_default_policy(mut self, policy: LinkPolicy) -> Self {
        self.default_policy = policy;
        self
    }

    /// Overrides the policy of the directed link `from → to`.
    pub fn with_link(mut self, from: NodeId, to: NodeId, policy: LinkPolicy) -> Self {
        self.links.insert((from, to), policy);
        self
    }

    /// Overrides both directions of the `u – v` link.
    pub fn with_link_symmetric(self, u: NodeId, v: NodeId, policy: LinkPolicy) -> Self {
        self.with_link(u, v, policy).with_link(v, u, policy)
    }

    /// Crash-stops `node` at `round`: from that round on it neither acts nor
    /// sends (an honest node's protocol is no longer invoked; a corrupted
    /// node's adversarial sends are dropped).
    pub fn with_crash(mut self, node: NodeId, round: u32) -> Self {
        self.crashes.insert(node, round);
        self
    }

    /// Adds a transient partition.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// The policy governing `from → to`.
    pub fn policy(&self, from: NodeId, to: NodeId) -> &LinkPolicy {
        self.links.get(&(from, to)).unwrap_or(&self.default_policy)
    }

    /// The round `node` crash-stops at, if any.
    pub fn crash_round(&self, node: NodeId) -> Option<u32> {
        self.crashes.get(&node).copied()
    }

    /// `true` if `node` is dead in `round`.
    pub fn crashed(&self, node: NodeId, round: u32) -> bool {
        self.crash_round(node).is_some_and(|r| r <= round)
    }

    /// The nodes crashing exactly at `round`, in ascending order (for
    /// deterministic event emission).
    pub fn crashes_at(&self, round: u32) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .crashes
            .iter()
            .filter(|&(_, &r)| r == round)
            .map(|(&v, _)| v)
            .collect();
        out.sort();
        out
    }

    /// `true` if some active partition separates `from` and `to` for a
    /// message sent in `round`.
    pub fn partitioned(&self, from: NodeId, to: NodeId, round: u32) -> bool {
        self.partitions.iter().any(|p| p.cuts(from, to, round))
    }

    /// `true` if the plan can never alter a run: no crashes, no partitions,
    /// and every policy (default and overrides) transparent.
    ///
    /// This is the hypothesis of the differential gate: an empty plan makes
    /// `NetRunner` byte-identical to `Runner`.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.partitions.is_empty()
            && self.default_policy.is_transparent()
            && self.links.values().all(LinkPolicy::is_transparent)
    }

    /// The largest extra delay any policy of this plan can inject; the
    /// `NetRunner` scales its default round cap by `1 + max_delay()` so
    /// delay faults cannot silently truncate a run that would quiesce.
    pub fn max_delay(&self) -> u32 {
        self.links
            .values()
            .chain(std::iter::once(&self.default_policy))
            .map(LinkPolicy::effective_max_delay)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn empty_plan_is_empty_and_transparent() {
        let plan = FaultPlan::new(9);
        assert!(plan.is_empty());
        assert_eq!(plan.max_delay(), 0);
        assert!(plan.policy(0.into(), 1.into()).is_transparent());
        assert!(!plan.crashed(0.into(), 100));
        assert!(!plan.partitioned(0.into(), 1.into(), 3));
    }

    #[test]
    fn link_overrides_beat_the_default() {
        let lossy = LinkPolicy {
            drop: 0.5,
            ..LinkPolicy::default()
        };
        let plan = FaultPlan::new(0)
            .with_default_policy(LinkPolicy::transparent())
            .with_link(0.into(), 1.into(), lossy);
        assert_eq!(plan.policy(0.into(), 1.into()).drop, 0.5);
        assert_eq!(plan.policy(1.into(), 0.into()).drop, 0.0); // directed
        assert!(!plan.is_empty());
        let sym = FaultPlan::new(0).with_link_symmetric(0.into(), 1.into(), lossy);
        assert_eq!(sym.policy(1.into(), 0.into()).drop, 0.5);
    }

    #[test]
    fn delay_without_probability_is_transparent() {
        let pol = LinkPolicy {
            max_delay: 5,
            ..LinkPolicy::default()
        };
        assert!(pol.is_transparent());
        assert_eq!(pol.effective_max_delay(), 0);
        let plan = FaultPlan::new(0).with_default_policy(pol);
        assert!(plan.is_empty());
        assert_eq!(plan.max_delay(), 0);
    }

    #[test]
    fn max_delay_scans_all_policies() {
        let plan = FaultPlan::new(0)
            .with_default_policy(LinkPolicy {
                delay: 0.1,
                max_delay: 2,
                ..LinkPolicy::default()
            })
            .with_link(
                0.into(),
                1.into(),
                LinkPolicy {
                    delay: 1.0,
                    max_delay: 7,
                    ..LinkPolicy::default()
                },
            );
        assert_eq!(plan.max_delay(), 7);
    }

    #[test]
    fn crash_schedule_is_queried_by_round() {
        let plan = FaultPlan::new(0)
            .with_crash(2.into(), 3)
            .with_crash(1.into(), 3)
            .with_crash(4.into(), 0);
        assert!(!plan.crashed(2.into(), 2));
        assert!(plan.crashed(2.into(), 3));
        assert!(plan.crashed(4.into(), 9));
        assert_eq!(plan.crashes_at(3), vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(plan.crashes_at(1), Vec::<NodeId>::new());
        assert!(!plan.is_empty());
    }

    #[test]
    fn partitions_cut_crossing_traffic_only_while_active() {
        let p = Partition {
            from_round: 2,
            to_round: 4,
            side: set(&[0, 1]),
        };
        assert!(p.cuts(0.into(), 2.into(), 2));
        assert!(p.cuts(2.into(), 1.into(), 4));
        assert!(!p.cuts(0.into(), 1.into(), 3)); // same side
        assert!(!p.cuts(2.into(), 3.into(), 3)); // same (other) side
        assert!(!p.cuts(0.into(), 2.into(), 1)); // not yet active
        assert!(!p.cuts(0.into(), 2.into(), 5)); // healed
        let plan = FaultPlan::new(0).with_partition(p);
        assert!(plan.partitioned(0.into(), 3.into(), 3));
        assert!(!plan.is_empty());
    }
}
