//! The declarative fault model: what the network may do to each message.
//!
//! A [`FaultPlan`] is pure data — a seed plus per-link policies, node
//! crashes and transient partitions. The `NetRunner` interprets it with the
//! stateless [`FaultRng`](crate::FaultRng), so a run is bit-reproducible
//! from `(plan, protocol, adversary)` alone, and the *empty* plan is
//! guaranteed transparent (the differential gate against `rmt-sim`'s
//! `Runner` checks this byte for byte).

use std::collections::HashMap;
use std::fmt;

use rmt_obs::Json;
use rmt_sets::{NodeId, NodeSet};

/// Why a serialized fault plan (or message adversary) was rejected.
///
/// Malformed input is a *validation error*, never a panic: corpus fixtures
/// and hand-written plans go through the same decoder, and a bad file must
/// surface as a diagnosable message naming the offending field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanError {
    /// Dotted path of the offending field (e.g. `links[2].policy.drop`).
    pub field: String,
    /// What was wrong with it.
    pub message: String,
}

impl PlanError {
    /// Builds an error for `field`.
    pub fn new(field: impl Into<String>, message: impl Into<String>) -> Self {
        PlanError {
            field: field.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for PlanError {}

/// Encodes a `u64` losslessly: `Json::Int` only holds `i64`, so large seeds
/// go over the wire as `"0x..."` strings.
pub fn u64_to_json(value: u64) -> Json {
    match i64::try_from(value) {
        Ok(n) => Json::Int(n),
        Err(_) => Json::Str(format!("{value:#x}")),
    }
}

/// Decodes a `u64` from either a non-negative integer or a `"0x..."` string.
pub fn u64_from_json(v: &Json, at: &str) -> Result<u64, PlanError> {
    match v {
        Json::Int(n) if *n >= 0 => Ok(*n as u64),
        Json::Int(_) => Err(PlanError::new(at, "must be non-negative")),
        Json::Str(s) => {
            let digits = s
                .strip_prefix("0x")
                .ok_or_else(|| PlanError::new(at, "expected an integer or a \"0x...\" string"))?;
            u64::from_str_radix(digits, 16)
                .map_err(|_| PlanError::new(at, format!("bad hex literal {s:?}")))
        }
        _ => Err(PlanError::new(
            at,
            "expected an integer or a \"0x...\" string",
        )),
    }
}

/// Decodes a `u32` round/count field.
pub fn u32_from_json(v: &Json, at: &str) -> Result<u32, PlanError> {
    let raw = u64_from_json(v, at)?;
    u32::try_from(raw).map_err(|_| PlanError::new(at, "does not fit in u32"))
}

/// Decodes a probability: a finite number in `[0, 1]`.
fn prob_from_json(v: &Json, at: &str) -> Result<f64, PlanError> {
    let p = match v {
        Json::Num(p) => *p,
        Json::Int(n) => *n as f64,
        _ => return Err(PlanError::new(at, "expected a number")),
    };
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(PlanError::new(
            at,
            format!("probability {p} outside [0, 1]"),
        ));
    }
    Ok(p)
}

/// Encodes a node set as a sorted array of raw ids.
pub fn nodeset_to_json(set: &NodeSet) -> Json {
    Json::Arr(set.iter().map(|v| Json::Int(i64::from(v.raw()))).collect())
}

/// Decodes a node set from an array of non-negative integers.
pub fn nodeset_from_json(v: &Json, at: &str) -> Result<NodeSet, PlanError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| PlanError::new(at, "expected an array of node ids"))?;
    let mut set = NodeSet::new();
    for (i, item) in arr.iter().enumerate() {
        let raw = u32_from_json(item, &format!("{at}[{i}]"))?;
        set.insert(NodeId::new(raw));
    }
    Ok(set)
}

/// Looks up a required object field.
pub fn field<'a>(v: &'a Json, key: &str, at: &str) -> Result<&'a Json, PlanError> {
    v.get(key)
        .ok_or_else(|| PlanError::new(format!("{at}{key}"), "missing required field"))
}

/// What one directed link may do to each message it carries.
///
/// Probabilities are evaluated per message with independent seeded draws;
/// the default policy (all zeros) is transparent — the link behaves like the
/// perfect synchronous channel of the paper's model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkPolicy {
    /// Probability the message is lost.
    pub drop: f64,
    /// Probability delivery is delayed beyond the synchronous `r + 1` bound.
    pub delay: f64,
    /// Maximum extra delay in rounds; a delayed message arrives at
    /// `r + 1 + d` with `d` uniform in `1..=max_delay`. Ignored while
    /// `delay` is zero.
    pub max_delay: u32,
    /// Probability a second copy of the message is enqueued (with its own
    /// independent delay draw).
    pub duplicate: f64,
    /// Scramble within-round delivery order: messages on this link get a
    /// seeded pseudorandom delivery sequence instead of send order, so a
    /// recipient's inbox no longer reflects the order in which its
    /// neighbours sent.
    pub reorder: bool,
}

impl Default for LinkPolicy {
    fn default() -> Self {
        LinkPolicy {
            drop: 0.0,
            delay: 0.0,
            max_delay: 0,
            duplicate: 0.0,
            reorder: false,
        }
    }
}

impl LinkPolicy {
    /// The perfect channel: no faults at all.
    pub fn transparent() -> Self {
        LinkPolicy::default()
    }

    /// `true` if this policy can never alter a message's fate.
    pub fn is_transparent(&self) -> bool {
        self.drop <= 0.0
            && (self.delay <= 0.0 || self.max_delay == 0)
            && self.duplicate <= 0.0
            && !self.reorder
    }

    /// The largest extra delay this policy can inject.
    pub fn effective_max_delay(&self) -> u32 {
        if self.delay > 0.0 {
            self.max_delay
        } else {
            0
        }
    }

    /// Serializes the policy (rmt-obs codec conventions: snake_case keys,
    /// insertion order preserved).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("drop", Json::Num(self.drop)),
            ("delay", Json::Num(self.delay)),
            ("max_delay", Json::Int(i64::from(self.max_delay))),
            ("duplicate", Json::Num(self.duplicate)),
            ("reorder", Json::Bool(self.reorder)),
        ])
    }

    /// Decodes and validates a policy; `at` prefixes error paths.
    pub fn from_json(v: &Json, at: &str) -> Result<Self, PlanError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(PlanError::new(
                at.trim_end_matches('.'),
                "expected an object",
            ));
        }
        let reorder = match v.get("reorder") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(PlanError::new(format!("{at}reorder"), "expected a bool")),
        };
        let opt_prob = |key: &str| -> Result<f64, PlanError> {
            v.get(key)
                .map_or(Ok(0.0), |p| prob_from_json(p, &format!("{at}{key}")))
        };
        Ok(LinkPolicy {
            drop: opt_prob("drop")?,
            delay: opt_prob("delay")?,
            max_delay: v
                .get("max_delay")
                .map_or(Ok(0), |n| u32_from_json(n, &format!("{at}max_delay")))?,
            duplicate: opt_prob("duplicate")?,
            reorder,
        })
    }
}

/// A transient network partition: while active, messages *sent* in
/// `rounds` that cross between `side` and its complement are lost.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// First send round the partition affects.
    pub from_round: u32,
    /// Last send round the partition affects (inclusive).
    pub to_round: u32,
    /// One side of the split; the other side is everything else.
    pub side: NodeSet,
}

impl Partition {
    /// `true` if a message sent `from → to` in `round` crosses the split
    /// while it is active.
    pub fn cuts(&self, from: NodeId, to: NodeId, round: u32) -> bool {
        (self.from_round..=self.to_round).contains(&round)
            && self.side.contains(from) != self.side.contains(to)
    }

    /// Serializes the partition.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("from_round", Json::Int(i64::from(self.from_round))),
            ("to_round", Json::Int(i64::from(self.to_round))),
            ("side", nodeset_to_json(&self.side)),
        ])
    }

    /// Decodes and validates a partition; `at` prefixes error paths.
    pub fn from_json(v: &Json, at: &str) -> Result<Self, PlanError> {
        let from_round = u32_from_json(field(v, "from_round", at)?, &format!("{at}from_round"))?;
        let to_round = u32_from_json(field(v, "to_round", at)?, &format!("{at}to_round"))?;
        if from_round > to_round {
            return Err(PlanError::new(
                format!("{at}from_round"),
                format!("window {from_round}..={to_round} is empty"),
            ));
        }
        Ok(Partition {
            from_round,
            to_round,
            side: nodeset_from_json(field(v, "side", at)?, &format!("{at}side"))?,
        })
    }
}

/// The full fault schedule of one run.
///
/// Built with the `with_*` combinators; an unmodified `FaultPlan::new(seed)`
/// is empty and therefore transparent.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    default_policy: LinkPolicy,
    links: HashMap<(NodeId, NodeId), LinkPolicy>,
    crashes: HashMap<NodeId, u32>,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// The empty (transparent) plan with the given fault seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The seed all fault draws derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replaces the fault seed, keeping the schedule.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The default (non-overridden) link policy.
    pub fn default_policy(&self) -> &LinkPolicy {
        &self.default_policy
    }

    /// The explicit per-link overrides, sorted by `(from, to)`.
    pub fn link_overrides(&self) -> Vec<((NodeId, NodeId), LinkPolicy)> {
        let mut out: Vec<_> = self.links.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_by_key(|(coords, _)| *coords);
        out
    }

    /// The scheduled crashes, sorted by node.
    pub fn crash_schedule(&self) -> Vec<(NodeId, u32)> {
        let mut out: Vec<_> = self.crashes.iter().map(|(&v, &r)| (v, r)).collect();
        out.sort();
        out
    }

    /// The transient partitions, in insertion order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Applies `policy` to every link without an explicit override.
    pub fn with_default_policy(mut self, policy: LinkPolicy) -> Self {
        self.default_policy = policy;
        self
    }

    /// Overrides the policy of the directed link `from → to`.
    pub fn with_link(mut self, from: NodeId, to: NodeId, policy: LinkPolicy) -> Self {
        self.links.insert((from, to), policy);
        self
    }

    /// Overrides both directions of the `u – v` link.
    pub fn with_link_symmetric(self, u: NodeId, v: NodeId, policy: LinkPolicy) -> Self {
        self.with_link(u, v, policy).with_link(v, u, policy)
    }

    /// Crash-stops `node` at `round`: from that round on it neither acts nor
    /// sends (an honest node's protocol is no longer invoked; a corrupted
    /// node's adversarial sends are dropped).
    pub fn with_crash(mut self, node: NodeId, round: u32) -> Self {
        self.crashes.insert(node, round);
        self
    }

    /// Adds a transient partition.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// The policy governing `from → to`.
    pub fn policy(&self, from: NodeId, to: NodeId) -> &LinkPolicy {
        self.links.get(&(from, to)).unwrap_or(&self.default_policy)
    }

    /// The round `node` crash-stops at, if any.
    pub fn crash_round(&self, node: NodeId) -> Option<u32> {
        self.crashes.get(&node).copied()
    }

    /// `true` if `node` is dead in `round`.
    pub fn crashed(&self, node: NodeId, round: u32) -> bool {
        self.crash_round(node).is_some_and(|r| r <= round)
    }

    /// The nodes crashing exactly at `round`, in ascending order (for
    /// deterministic event emission).
    pub fn crashes_at(&self, round: u32) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .crashes
            .iter()
            .filter(|&(_, &r)| r == round)
            .map(|(&v, _)| v)
            .collect();
        out.sort();
        out
    }

    /// `true` if some active partition separates `from` and `to` for a
    /// message sent in `round`.
    pub fn partitioned(&self, from: NodeId, to: NodeId, round: u32) -> bool {
        self.partitions.iter().any(|p| p.cuts(from, to, round))
    }

    /// `true` if the plan can never alter a run: no crashes, no partitions,
    /// and every policy (default and overrides) transparent.
    ///
    /// This is the hypothesis of the differential gate: an empty plan makes
    /// `NetRunner` byte-identical to `Runner`.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.partitions.is_empty()
            && self.default_policy.is_transparent()
            && self.links.values().all(LinkPolicy::is_transparent)
    }

    /// The largest extra delay any policy of this plan can inject; the
    /// `NetRunner` scales its default round cap by `1 + max_delay()` so
    /// delay faults cannot silently truncate a run that would quiesce.
    pub fn max_delay(&self) -> u32 {
        self.links
            .values()
            .chain(std::iter::once(&self.default_policy))
            .map(LinkPolicy::effective_max_delay)
            .max()
            .unwrap_or(0)
    }

    /// Serializes the plan. Links and crashes are emitted in sorted order so
    /// equal plans encode to identical bytes.
    pub fn to_json(&self) -> Json {
        let mut links: Vec<(&(NodeId, NodeId), &LinkPolicy)> = self.links.iter().collect();
        links.sort_by_key(|(coords, _)| **coords);
        let mut crashes: Vec<(&NodeId, &u32)> = self.crashes.iter().collect();
        crashes.sort();
        Json::obj([
            ("seed", u64_to_json(self.seed)),
            ("default_policy", self.default_policy.to_json()),
            (
                "links",
                Json::Arr(
                    links
                        .into_iter()
                        .map(|(&(from, to), policy)| {
                            Json::obj([
                                ("from", Json::Int(i64::from(from.raw()))),
                                ("to", Json::Int(i64::from(to.raw()))),
                                ("policy", policy.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "crashes",
                Json::Arr(
                    crashes
                        .into_iter()
                        .map(|(&node, &round)| {
                            Json::obj([
                                ("node", Json::Int(i64::from(node.raw()))),
                                ("round", Json::Int(i64::from(round))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "partitions",
                Json::Arr(self.partitions.iter().map(Partition::to_json).collect()),
            ),
        ])
    }

    /// Decodes and validates a plan. Every malformed field is reported as a
    /// [`PlanError`] naming its path — never a panic.
    pub fn from_json(v: &Json) -> Result<Self, PlanError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(PlanError::new("plan", "expected an object"));
        }
        let seed = u64_from_json(field(v, "seed", "")?, "seed")?;
        let default_policy = v
            .get("default_policy")
            .map_or(Ok(LinkPolicy::default()), |p| {
                LinkPolicy::from_json(p, "default_policy.")
            })?;

        let mut links = HashMap::new();
        if let Some(raw) = v.get("links") {
            let arr = raw
                .as_arr()
                .ok_or_else(|| PlanError::new("links", "expected an array"))?;
            for (i, entry) in arr.iter().enumerate() {
                let at = format!("links[{i}].");
                let from = NodeId::new(u32_from_json(
                    field(entry, "from", &at)?,
                    &format!("{at}from"),
                )?);
                let to = NodeId::new(u32_from_json(field(entry, "to", &at)?, &format!("{at}to"))?);
                let policy =
                    LinkPolicy::from_json(field(entry, "policy", &at)?, &format!("{at}policy."))?;
                if links.insert((from, to), policy).is_some() {
                    return Err(PlanError::new(
                        format!("links[{i}]"),
                        format!("duplicate entry for link {} -> {}", from.raw(), to.raw()),
                    ));
                }
            }
        }

        let mut crashes = HashMap::new();
        if let Some(raw) = v.get("crashes") {
            let arr = raw
                .as_arr()
                .ok_or_else(|| PlanError::new("crashes", "expected an array"))?;
            for (i, entry) in arr.iter().enumerate() {
                let at = format!("crashes[{i}].");
                let node = NodeId::new(u32_from_json(
                    field(entry, "node", &at)?,
                    &format!("{at}node"),
                )?);
                let round = u32_from_json(field(entry, "round", &at)?, &format!("{at}round"))?;
                if crashes.insert(node, round).is_some() {
                    return Err(PlanError::new(
                        format!("crashes[{i}]"),
                        format!("duplicate crash for node {}", node.raw()),
                    ));
                }
            }
        }

        let mut partitions = Vec::new();
        if let Some(raw) = v.get("partitions") {
            let arr = raw
                .as_arr()
                .ok_or_else(|| PlanError::new("partitions", "expected an array"))?;
            for (i, entry) in arr.iter().enumerate() {
                partitions.push(Partition::from_json(entry, &format!("partitions[{i}]."))?);
            }
        }

        Ok(FaultPlan {
            seed,
            default_policy,
            links,
            crashes,
            partitions,
        })
    }

    /// Decodes a plan from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, PlanError> {
        let v = Json::parse(text)
            .map_err(|e| PlanError::new("plan", format!("not valid JSON: {e}")))?;
        FaultPlan::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn empty_plan_is_empty_and_transparent() {
        let plan = FaultPlan::new(9);
        assert!(plan.is_empty());
        assert_eq!(plan.max_delay(), 0);
        assert!(plan.policy(0.into(), 1.into()).is_transparent());
        assert!(!plan.crashed(0.into(), 100));
        assert!(!plan.partitioned(0.into(), 1.into(), 3));
    }

    #[test]
    fn link_overrides_beat_the_default() {
        let lossy = LinkPolicy {
            drop: 0.5,
            ..LinkPolicy::default()
        };
        let plan = FaultPlan::new(0)
            .with_default_policy(LinkPolicy::transparent())
            .with_link(0.into(), 1.into(), lossy);
        assert_eq!(plan.policy(0.into(), 1.into()).drop, 0.5);
        assert_eq!(plan.policy(1.into(), 0.into()).drop, 0.0); // directed
        assert!(!plan.is_empty());
        let sym = FaultPlan::new(0).with_link_symmetric(0.into(), 1.into(), lossy);
        assert_eq!(sym.policy(1.into(), 0.into()).drop, 0.5);
    }

    #[test]
    fn delay_without_probability_is_transparent() {
        let pol = LinkPolicy {
            max_delay: 5,
            ..LinkPolicy::default()
        };
        assert!(pol.is_transparent());
        assert_eq!(pol.effective_max_delay(), 0);
        let plan = FaultPlan::new(0).with_default_policy(pol);
        assert!(plan.is_empty());
        assert_eq!(plan.max_delay(), 0);
    }

    #[test]
    fn max_delay_scans_all_policies() {
        let plan = FaultPlan::new(0)
            .with_default_policy(LinkPolicy {
                delay: 0.1,
                max_delay: 2,
                ..LinkPolicy::default()
            })
            .with_link(
                0.into(),
                1.into(),
                LinkPolicy {
                    delay: 1.0,
                    max_delay: 7,
                    ..LinkPolicy::default()
                },
            );
        assert_eq!(plan.max_delay(), 7);
    }

    #[test]
    fn crash_schedule_is_queried_by_round() {
        let plan = FaultPlan::new(0)
            .with_crash(2.into(), 3)
            .with_crash(1.into(), 3)
            .with_crash(4.into(), 0);
        assert!(!plan.crashed(2.into(), 2));
        assert!(plan.crashed(2.into(), 3));
        assert!(plan.crashed(4.into(), 9));
        assert_eq!(plan.crashes_at(3), vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(plan.crashes_at(1), Vec::<NodeId>::new());
        assert!(!plan.is_empty());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new(u64::MAX - 3)
            .with_default_policy(LinkPolicy {
                drop: 0.25,
                delay: 0.5,
                max_delay: 3,
                duplicate: 0.125,
                reorder: true,
            })
            .with_link(
                2.into(),
                0.into(),
                LinkPolicy {
                    drop: 1.0,
                    ..LinkPolicy::default()
                },
            )
            .with_link_symmetric(0.into(), 1.into(), LinkPolicy::transparent())
            .with_crash(3.into(), 2)
            .with_crash(1.into(), 0)
            .with_partition(Partition {
                from_round: 1,
                to_round: 4,
                side: set(&[0, 2]),
            });
        let text = plan.to_json().encode();
        let back = FaultPlan::from_json_str(&text).expect("round-trip");
        assert_eq!(back, plan);
        // Sorted emission: equal plans encode identically even though the
        // internal maps are unordered.
        assert_eq!(back.to_json().encode(), text);
    }

    #[test]
    fn empty_plan_round_trips_and_stays_empty() {
        let plan = FaultPlan::new(7);
        let back = FaultPlan::from_json_str(&plan.to_json().encode()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.seed(), 7);
    }

    #[test]
    fn malformed_plans_are_rejected_with_field_paths() {
        let reject = |text: &str, needle: &str| {
            let err = FaultPlan::from_json_str(text).unwrap_err();
            assert!(
                err.field.contains(needle),
                "expected field path containing {needle:?}, got {err}"
            );
        };
        reject("[]", "plan");
        reject("{}", "seed");
        reject(r#"{"seed": -1}"#, "seed");
        reject(r#"{"seed": "0xZZ"}"#, "seed");
        reject(
            r#"{"seed": 1, "default_policy": {"drop": 1.5}}"#,
            "default_policy.drop",
        );
        reject(
            r#"{"seed": 1, "links": [{"from": 0, "to": 1}]}"#,
            "links[0].policy",
        );
        reject(
            r#"{"seed": 1, "links": [
                {"from": 0, "to": 1, "policy": {}},
                {"from": 0, "to": 1, "policy": {}}
            ]}"#,
            "links[1]",
        );
        reject(
            r#"{"seed": 1, "crashes": [{"node": 0, "round": 0}, {"node": 0, "round": 2}]}"#,
            "crashes[1]",
        );
        reject(
            r#"{"seed": 1, "partitions": [{"from_round": 5, "to_round": 2, "side": []}]}"#,
            "partitions[0].from_round",
        );
        reject(
            r#"{"seed": 1, "partitions": [{"from_round": 0, "to_round": 2, "side": [-1]}]}"#,
            "partitions[0].side[0]",
        );
        assert!(FaultPlan::from_json_str("not json").is_err());
    }

    #[test]
    fn partitions_cut_crossing_traffic_only_while_active() {
        let p = Partition {
            from_round: 2,
            to_round: 4,
            side: set(&[0, 1]),
        };
        assert!(p.cuts(0.into(), 2.into(), 2));
        assert!(p.cuts(2.into(), 1.into(), 4));
        assert!(!p.cuts(0.into(), 1.into(), 3)); // same side
        assert!(!p.cuts(2.into(), 3.into(), 3)); // same (other) side
        assert!(!p.cuts(0.into(), 2.into(), 1)); // not yet active
        assert!(!p.cuts(0.into(), 2.into(), 5)); // healed
        let plan = FaultPlan::new(0).with_partition(p);
        assert!(plan.partitioned(0.into(), 3.into(), 3));
        assert!(!plan.is_empty());
    }
}
