//! The message-adversary scheduler mode: budgeted per-round suppression.
//!
//! The [`FaultPlan`](crate::FaultPlan) is a *probabilistic* fault model:
//! each link misbehaves independently with fixed per-message odds. The
//! message adversary of Albouy, Frey, Raynal and Taïani ("Signature-Free
//! Byzantine Reliable Broadcast under a Message Adversary") is the
//! *adversarial* counterpart: an entity that sees every message sent in a
//! round — the full-information view — and may erase up to `d` of them,
//! choosing its victims to do maximal damage. [`MessageAdversary`] brings
//! that model to the `NetRunner`: a per-round budget, an activity window,
//! and a victim-selection policy built around a *focus* set (suppress
//! traffic touching those nodes first — starving the receiver is the
//! canonical liveness attack).
//!
//! Selection is a pure function of the round's admitted send coordinates,
//! so runs stay bit-reproducible and a suppressor can be serialized into a
//! corpus fixture alongside the plan it composes with. Suppressed messages
//! surface in the event stream as `FaultDrop { reason: Suppressed }` and in
//! [`FaultStats::suppressed`](crate::FaultStats::suppressed).

use rmt_obs::Json;
use rmt_sets::{NodeId, NodeSet};

use crate::plan::{field, nodeset_from_json, nodeset_to_json, u32_from_json, PlanError};

/// A budgeted message adversary: each round inside its window it erases up
/// to `budget` of the round's admitted messages, preferring traffic into
/// (then out of) its focus set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageAdversary {
    budget: u32,
    from_round: u32,
    to_round: u32,
    focus: NodeSet,
    spill: bool,
}

impl MessageAdversary {
    /// An unfocused adversary: suppresses the first `budget` admitted
    /// messages of every round (window `0..=u32::MAX`, spill on).
    pub fn new(budget: u32) -> Self {
        MessageAdversary {
            budget,
            from_round: 0,
            to_round: u32::MAX,
            focus: NodeSet::new(),
            spill: true,
        }
    }

    /// A focused adversary: suppresses only messages touching `focus`
    /// (inbound first, then outbound), leaving the rest of the network
    /// untouched even when budget remains.
    pub fn focused(budget: u32, focus: NodeSet) -> Self {
        MessageAdversary {
            budget,
            from_round: 0,
            to_round: u32::MAX,
            focus,
            spill: false,
        }
    }

    /// Restricts activity to send rounds `from_round..=to_round`.
    pub fn with_window(mut self, from_round: u32, to_round: u32) -> Self {
        self.from_round = from_round;
        self.to_round = to_round;
        self
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: u32) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the focus set.
    pub fn with_focus(mut self, focus: NodeSet) -> Self {
        self.focus = focus;
        self
    }

    /// Sets whether leftover budget spills onto traffic not touching the
    /// focus set.
    pub fn with_spill(mut self, spill: bool) -> Self {
        self.spill = spill;
        self
    }

    /// The per-round suppression budget `d`.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// First affected send round.
    pub fn from_round(&self) -> u32 {
        self.from_round
    }

    /// Last affected send round (inclusive).
    pub fn to_round(&self) -> u32 {
        self.to_round
    }

    /// The preferred victims.
    pub fn focus(&self) -> &NodeSet {
        &self.focus
    }

    /// Whether leftover budget hits non-focus traffic.
    pub fn spill(&self) -> bool {
        self.spill
    }

    /// `true` if the adversary acts on messages sent in `round`.
    pub fn active(&self, round: u32) -> bool {
        self.budget > 0 && (self.from_round..=self.to_round).contains(&round)
    }

    /// `true` if no round can ever lose a message to this adversary.
    pub fn is_transparent(&self) -> bool {
        self.budget == 0 || self.from_round > self.to_round
    }

    /// Chooses up to `budget` victims among the round's admitted sends
    /// (given in admission order as `(from, to)` coordinates), returning
    /// their indices in ascending order.
    ///
    /// Priority: messages *into* the focus set, then *out of* it, then —
    /// only if `spill` — everything else; ties break by admission order.
    /// The choice is a pure function of `(round, sends)`, keeping runs
    /// replayable.
    pub fn choose(&self, round: u32, sends: &[(NodeId, NodeId)]) -> Vec<usize> {
        if !self.active(round) {
            return Vec::new();
        }
        let mut ranked: Vec<(u8, usize)> = Vec::new();
        for (i, &(from, to)) in sends.iter().enumerate() {
            let rank = if self.focus.contains(to) {
                0
            } else if self.focus.contains(from) {
                1
            } else {
                2
            };
            if rank == 2 && !self.spill {
                continue;
            }
            ranked.push((rank, i));
        }
        ranked.sort_unstable();
        let mut victims: Vec<usize> = ranked
            .into_iter()
            .take(self.budget as usize)
            .map(|(_, i)| i)
            .collect();
        victims.sort_unstable();
        victims
    }

    /// Serializes the adversary (rmt-obs codec conventions).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("budget", Json::Int(i64::from(self.budget))),
            ("from_round", Json::Int(i64::from(self.from_round))),
            ("to_round", Json::Int(i64::from(self.to_round))),
            ("focus", nodeset_to_json(&self.focus)),
            ("spill", Json::Bool(self.spill)),
        ])
    }

    /// Decodes and validates an adversary; `at` prefixes error paths.
    pub fn from_json(v: &Json, at: &str) -> Result<Self, PlanError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(PlanError::new(
                at.trim_end_matches('.'),
                "expected an object",
            ));
        }
        let budget = u32_from_json(field(v, "budget", at)?, &format!("{at}budget"))?;
        let from_round = v
            .get("from_round")
            .map_or(Ok(0), |n| u32_from_json(n, &format!("{at}from_round")))?;
        let to_round = v
            .get("to_round")
            .map_or(Ok(u32::MAX), |n| u32_from_json(n, &format!("{at}to_round")))?;
        if from_round > to_round {
            return Err(PlanError::new(
                format!("{at}from_round"),
                format!("window {from_round}..={to_round} is empty"),
            ));
        }
        let focus = v.get("focus").map_or(Ok(NodeSet::new()), |f| {
            nodeset_from_json(f, &format!("{at}focus"))
        })?;
        let spill = match v.get("spill") {
            None => focus.is_empty(),
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(PlanError::new(format!("{at}spill"), "expected a bool")),
        };
        Ok(MessageAdversary {
            budget,
            from_round,
            to_round,
            focus,
            spill,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn coords(pairs: &[(u32, u32)]) -> Vec<(NodeId, NodeId)> {
        pairs.iter().map(|&(f, t)| (f.into(), t.into())).collect()
    }

    #[test]
    fn unfocused_adversary_takes_admission_prefix() {
        let adv = MessageAdversary::new(2);
        let sends = coords(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(adv.choose(0, &sends), vec![0, 1]);
        assert_eq!(adv.choose(1000, &sends), vec![0, 1]);
    }

    #[test]
    fn focused_adversary_prefers_inbound_then_outbound() {
        let adv = MessageAdversary::focused(2, set(&[3]));
        // Outbound from 3 at index 0, inbound to 3 at indices 2 and 4.
        let sends = coords(&[(3, 0), (0, 1), (1, 3), (1, 2), (2, 3)]);
        // Both inbound messages outrank the outbound one.
        assert_eq!(adv.choose(0, &sends), vec![2, 4]);
        // With budget for all three, the outbound message falls too — but
        // without spill the unrelated traffic survives any budget.
        let adv = adv.with_budget(10);
        assert_eq!(adv.choose(0, &sends), vec![0, 2, 4]);
    }

    #[test]
    fn window_and_zero_budget_deactivate() {
        let adv = MessageAdversary::new(1).with_window(2, 4);
        let sends = coords(&[(0, 1)]);
        assert!(adv.choose(1, &sends).is_empty());
        assert_eq!(adv.choose(2, &sends), vec![0]);
        assert_eq!(adv.choose(4, &sends), vec![0]);
        assert!(adv.choose(5, &sends).is_empty());
        assert!(!adv.is_transparent());
        assert!(MessageAdversary::new(0).is_transparent());
        assert!(MessageAdversary::new(0).choose(0, &sends).is_empty());
    }

    #[test]
    fn round_trips_through_json() {
        let adv = MessageAdversary::focused(3, set(&[2, 5]))
            .with_window(1, 9)
            .with_spill(true);
        let back = MessageAdversary::from_json(
            &Json::parse(&adv.to_json().encode()).unwrap(),
            "suppression.",
        )
        .unwrap();
        assert_eq!(back, adv);
    }

    #[test]
    fn malformed_adversaries_are_rejected() {
        let reject = |text: &str, needle: &str| {
            let err = MessageAdversary::from_json(&Json::parse(text).unwrap(), "suppression.")
                .unwrap_err();
            assert!(
                err.field.contains(needle),
                "expected field containing {needle:?}, got {err}"
            );
        };
        reject("{}", "budget");
        reject(r#"{"budget": -1}"#, "budget");
        reject(
            r#"{"budget": 1, "from_round": 5, "to_round": 2}"#,
            "from_round",
        );
        reject(r#"{"budget": 1, "focus": [true]}"#, "focus[0]");
        reject(r#"{"budget": 1, "spill": 3}"#, "spill");
        reject("[]", "suppression");
    }

    #[test]
    fn spill_defaults_track_focus() {
        let bare =
            MessageAdversary::from_json(&Json::parse(r#"{"budget": 1}"#).unwrap(), "").unwrap();
        assert!(bare.spill());
        let focused = MessageAdversary::from_json(
            &Json::parse(r#"{"budget": 1, "focus": [0]}"#).unwrap(),
            "",
        )
        .unwrap();
        assert!(!focused.spill());
    }
}
