//! The stateless deterministic PRNG behind fault decisions.
//!
//! Every fault decision is a pure function of `(seed, round, from, to, k,
//! salt)` — no mutable generator state — so a decision never depends on how
//! much *other* traffic the network carried, only on the message's own
//! coordinates. Two runs with the same plan make identical decisions for
//! identical messages even if unrelated traffic differs, and replaying a
//! single edge's history needs no global replay.
//!
//! The mixer is SplitMix64 (Steele et al., *Fast splittable pseudorandom
//! number generators*), folded over the coordinates. It is not
//! cryptographic and does not need to be: the adversary model already grants
//! full information.

/// One SplitMix64 step: mixes `x` into a well-distributed 64-bit value.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Distinguishes the independent draws made for one message, so e.g. the
/// drop decision and the delay amount are uncorrelated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Salt {
    /// Should the link drop the message?
    Drop,
    /// Should the link duplicate the message?
    Duplicate,
    /// Should copy `c` be delayed?
    Delay(u32),
    /// By how many rounds is copy `c` delayed?
    DelayAmount(u32),
    /// Scrambled delivery sequence for copy `c` (reordering links).
    Sequence(u32),
}

impl Salt {
    fn raw(self) -> u64 {
        match self {
            Salt::Drop => 1,
            Salt::Duplicate => 2,
            Salt::Delay(c) => 3 | (u64::from(c) << 8),
            Salt::DelayAmount(c) => 4 | (u64::from(c) << 8),
            Salt::Sequence(c) => 5 | (u64::from(c) << 8),
        }
    }
}

/// The seeded, stateless fault-decision source.
#[derive(Clone, Copy, Debug)]
pub struct FaultRng {
    seed: u64,
}

impl FaultRng {
    /// Creates the source for `seed`.
    pub fn new(seed: u64) -> Self {
        FaultRng { seed }
    }

    /// The raw 64-bit draw for one `(round, from, to, k, salt)` coordinate,
    /// where `k` is the message's index among the round's `from → to`
    /// traffic.
    pub fn draw(&self, round: u32, from: u32, to: u32, k: u32, salt: Salt) -> u64 {
        let mut h = splitmix64(self.seed);
        h = splitmix64(h ^ u64::from(round));
        h = splitmix64(h ^ (u64::from(from) << 32 | u64::from(to)));
        h = splitmix64(h ^ u64::from(k));
        splitmix64(h ^ salt.raw())
    }

    /// The draw mapped uniformly into `[0, 1)` (53 mantissa bits).
    pub fn unit(&self, round: u32, from: u32, to: u32, k: u32, salt: Salt) -> f64 {
        (self.draw(round, from, to, k, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_salt_sensitive() {
        let rng = FaultRng::new(42);
        assert_eq!(
            rng.draw(3, 1, 2, 0, Salt::Drop),
            rng.draw(3, 1, 2, 0, Salt::Drop)
        );
        assert_ne!(
            rng.draw(3, 1, 2, 0, Salt::Drop),
            rng.draw(3, 1, 2, 0, Salt::Duplicate)
        );
        assert_ne!(
            rng.draw(3, 1, 2, 0, Salt::Delay(0)),
            rng.draw(3, 1, 2, 0, Salt::Delay(1))
        );
        assert_ne!(
            rng.draw(3, 1, 2, 0, Salt::Drop),
            FaultRng::new(43).draw(3, 1, 2, 0, Salt::Drop)
        );
    }

    #[test]
    fn direction_and_message_index_matter() {
        let rng = FaultRng::new(7);
        assert_ne!(
            rng.draw(1, 2, 5, 0, Salt::Drop),
            rng.draw(1, 5, 2, 0, Salt::Drop)
        );
        assert_ne!(
            rng.draw(1, 2, 5, 0, Salt::Drop),
            rng.draw(1, 2, 5, 1, Salt::Drop)
        );
    }

    #[test]
    fn unit_draws_stay_in_range_and_look_uniform() {
        let rng = FaultRng::new(0xFEED);
        let mut sum = 0.0;
        let n = 4096;
        for k in 0..n {
            let u = rng.unit(0, 0, 1, k, Salt::Drop);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }
}
