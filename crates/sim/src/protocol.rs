use rmt_sets::{NodeId, NodeSet};

use crate::message::{Envelope, Payload};

/// Static per-node information handed to a protocol on every call.
#[derive(Clone, Debug)]
pub struct NodeContext {
    /// This node's identity.
    pub id: NodeId,
    /// The current round (0 for [`Protocol::start`], then 1, 2, …).
    pub round: u32,
    /// This node's neighbours in the communication graph.
    pub neighbors: NodeSet,
}

/// A deterministic per-node protocol state machine.
///
/// The [`Runner`] calls [`start`](Protocol::start) once before round 1 and
/// then [`on_round`](Protocol::on_round) every round with the messages
/// delivered that round. Outgoing messages are `(recipient, payload)` pairs;
/// the runner stamps the authenticated sender and delivers next round,
/// dropping any message not along an edge.
///
/// [`Runner`]: crate::Runner
pub trait Protocol {
    /// Message body type.
    type Payload: Payload;
    /// Decision value type (e.g. the dealer's message space `X`).
    type Decision: Clone + PartialEq + std::fmt::Debug;

    /// Initial sends, before any message is received (round 0).
    fn start(&mut self, ctx: &NodeContext) -> Vec<(NodeId, Self::Payload)>;

    /// Processes one round's inbox and returns the messages to send.
    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &[Envelope<Self::Payload>],
    ) -> Vec<(NodeId, Self::Payload)>;

    /// The node's decision, if it has decided.
    fn decision(&self) -> Option<Self::Decision>;

    /// `true` once the node will never send again (lets the runner detect
    /// quiescence early). Defaults to "terminated once decided".
    fn is_terminated(&self) -> bool {
        self.decision().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Flood;

    #[test]
    fn default_termination_follows_decision() {
        let mut p = Flood::new(0.into(), Some(3));
        assert!(p.is_terminated()); // dealer decides immediately
        let q = Flood::new(1.into(), None);
        assert!(!q.is_terminated());
        let _ = &mut p;
    }
}
