//! The physical-model seam shared by every scheduler.
//!
//! The paper's model has exactly two physical constraints — traffic flows
//! only along edges of the graph, and channels are authenticated (the
//! adversary cannot forge an honest sender) — plus the bookkeeping every
//! experiment relies on: message/bit accounting and the observable event
//! stream. [`Transport`] packages those so the synchronous [`Runner`] and
//! the fault-injecting `NetRunner` of `rmt-net` enforce *the same* model
//! with *the same* event emission order: a scheduler that admits sends
//! through this seam and delivers them unchanged is observationally
//! identical to [`Runner`] (the empty-`FaultPlan` differential gate in
//! `rmt-net` checks this byte for byte).
//!
//! [`Runner`]: crate::Runner

use rmt_graph::Graph;
use rmt_obs::{RejectReason, RunEvent, RunObserver};
use rmt_sets::{NodeId, NodeSet};

use crate::message::{Envelope, Payload};
use crate::metrics::Metrics;
use crate::protocol::Protocol;

/// Slack added to the node count for the default round cap.
///
/// Every trail-bounded protocol in this workspace quiesces within
/// `node_count` delivery rounds — trails are simple paths, so no message
/// survives more hops than there are nodes. The extra slack covers the
/// bookkeeping rounds around that bound: the initial send phase, the final
/// empty-inflight round that detects quiescence, and a margin for protocols
/// that decide one round after their last delivery. See
/// [`default_max_rounds`].
pub const MAX_ROUNDS_SLACK: u32 = 4;

/// The default round cap of the synchronous schedulers:
/// `node_count + `[`MAX_ROUNDS_SLACK`].
///
/// Schedulers that stretch delivery beyond the synchronous `r + 1` bound
/// must scale this up accordingly — `rmt-net`'s `NetRunner` multiplies it by
/// `1 + max_delay` so a delay fault cannot silently truncate a run that
/// would have quiesced.
pub fn default_max_rounds(node_count: usize) -> u32 {
    node_count as u32 + MAX_ROUNDS_SLACK
}

/// Enforces the physical model on everything handed to a scheduler.
///
/// Honest sends are stamped with their true sender and silently limited to
/// graph edges (a protocol addressing a non-neighbour is a protocol bug, not
/// an attack — the message just does not exist). Adversarial envelopes are
/// *checked*: claiming an honest sender or a non-edge violates the model and
/// is rejected, counted, and reported to the observer.
pub struct Transport<'g> {
    graph: &'g Graph,
}

impl<'g> Transport<'g> {
    /// Wraps the communication graph.
    pub fn new(graph: &'g Graph) -> Self {
        Transport { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Admits one honest node's outgoing `(recipient, payload)` pairs for
    /// `round`: stamps the authenticated sender, drops non-edges, accounts
    /// messages and bits, and emits a [`RunEvent::HonestSend`] per admitted
    /// message.
    pub fn admit_honest<P: Payload, O: RunObserver>(
        &self,
        round: u32,
        from: NodeId,
        sends: Vec<(NodeId, P)>,
        metrics: &mut Metrics,
        honest_this_round: &mut u64,
        observer: &mut O,
    ) -> Vec<Envelope<P>> {
        let mut out = Vec::new();
        for (to, payload) in sends {
            if self.graph.has_edge(from, to) {
                metrics.honest_messages += 1;
                *honest_this_round += 1;
                metrics.honest_bits += payload.encoded_bits() as u64;
                if O::ACTIVE {
                    observer.on_event(&RunEvent::HonestSend {
                        round,
                        from: from.raw(),
                        to: to.raw(),
                        bits: payload.encoded_bits() as u64,
                        payload: format!("{payload:?}"),
                    });
                }
                out.push(Envelope::new(from, to, payload));
            }
        }
        out
    }

    /// Admits adversarial envelopes for `round`: envelopes claiming a sender
    /// outside `corrupted` (forgery on an authenticated channel) or a
    /// non-edge are rejected, counted in [`Metrics::rejected_adversarial`]
    /// and reported; valid ones are counted and emitted as
    /// [`RunEvent::AdversarialSend`].
    pub fn admit_adversarial<P: Payload, O: RunObserver>(
        &self,
        round: u32,
        corrupted: &NodeSet,
        envelopes: Vec<Envelope<P>>,
        metrics: &mut Metrics,
        observer: &mut O,
    ) -> Vec<Envelope<P>> {
        let mut out = Vec::new();
        for env in envelopes {
            let forged = !corrupted.contains(env.from);
            if !forged && self.graph.has_edge(env.from, env.to) {
                metrics.adversarial_messages += 1;
                if O::ACTIVE {
                    observer.on_event(&RunEvent::AdversarialSend {
                        round,
                        from: env.from.raw(),
                        to: env.to.raw(),
                        payload: format!("{:?}", env.payload),
                    });
                }
                out.push(env);
            } else {
                metrics.rejected_adversarial += 1;
                if O::ACTIVE {
                    observer.on_event(&RunEvent::RejectedSend {
                        round,
                        from: env.from.raw(),
                        to: env.to.raw(),
                        reason: if forged {
                            RejectReason::ForgedSender
                        } else {
                            RejectReason::NoSuchEdge
                        },
                    });
                }
            }
        }
        out
    }
}

/// Emits a [`RunEvent::Decision`] for every honest node that decided since
/// the last sweep, in ascending node order.
///
/// `decided` carries the sweep state across rounds (one flag per node
/// index). Only meaningful when the observer is active; schedulers guard the
/// call with `O::ACTIVE` so the inactive path stays event-free.
pub fn sweep_decisions<Q: Protocol, O: RunObserver>(
    graph: &Graph,
    protocols: &[Option<Q>],
    round: u32,
    decided: &mut [bool],
    observer: &mut O,
) {
    for v in graph.nodes() {
        if decided[v.index()] {
            continue;
        }
        if let Some(d) = protocols[v.index()].as_ref().and_then(Protocol::decision) {
            decided[v.index()] = true;
            observer.on_event(&RunEvent::Decision {
                round,
                node: v.raw(),
                value: format!("{d:?}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_graph::generators;
    use rmt_obs::VecObserver;

    #[test]
    fn default_round_cap_is_node_count_plus_slack() {
        assert_eq!(default_max_rounds(6), 6 + MAX_ROUNDS_SLACK);
        assert_eq!(default_max_rounds(0), MAX_ROUNDS_SLACK);
    }

    #[test]
    fn honest_non_edges_vanish_silently() {
        let g = generators::path_graph(3);
        let t = Transport::new(&g);
        let mut metrics = Metrics::default();
        let mut per_round = 0u64;
        let mut obs = VecObserver::new();
        let out = t.admit_honest(
            0,
            NodeId::new(0),
            vec![(NodeId::new(1), 7u64), (NodeId::new(2), 8u64)], // 0–2 is no edge
            &mut metrics,
            &mut per_round,
            &mut obs,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(metrics.honest_messages, 1);
        assert_eq!(per_round, 1);
        assert_eq!(metrics.honest_bits, 64);
        assert_eq!(obs.events.len(), 1); // no event for the silent drop
    }

    #[test]
    fn adversarial_violations_are_rejected_with_reasons() {
        let g = generators::path_graph(3);
        let t = Transport::new(&g);
        let corrupted: NodeSet = [1u32].into_iter().collect();
        let mut metrics = Metrics::default();
        let mut obs = VecObserver::new();
        let out = t.admit_adversarial(
            1,
            &corrupted,
            vec![
                Envelope::new(0.into(), 1.into(), 5u64), // forged honest sender
                Envelope::new(1.into(), 1.into(), 5u64), // no self edge
                Envelope::new(1.into(), 2.into(), 5u64), // valid
            ],
            &mut metrics,
            &mut obs,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(metrics.adversarial_messages, 1);
        assert_eq!(metrics.rejected_adversarial, 2);
        let reasons: Vec<_> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                RunEvent::RejectedSend { reason, .. } => Some(*reason),
                _ => None,
            })
            .collect();
        assert_eq!(
            reasons,
            vec![RejectReason::ForgedSender, RejectReason::NoSuchEdge]
        );
    }
}
