//! Human-readable run transcripts.
//!
//! The [`Runner`](crate::Runner) records deliveries for watched nodes;
//! [`Transcript`] renders them round by round, which the examples use to
//! show *why* a receiver decided (or could not).

use std::fmt::Write as _;

use rmt_sets::NodeId;

use crate::message::{Envelope, Payload};
use crate::protocol::Protocol;
use crate::runner::RunOutcome;

/// A formatted per-round view of everything delivered to one node.
#[derive(Clone, Debug)]
pub struct Transcript {
    lines: Vec<(u32, String)>,
    node: NodeId,
}

impl Transcript {
    /// Builds the transcript of the messages delivered to `node`
    /// (which must have been watched), rendering payloads with `describe`.
    pub fn for_node<Q: Protocol>(
        outcome: &RunOutcome<Q>,
        node: NodeId,
        mut describe: impl FnMut(&Envelope<Q::Payload>) -> String,
    ) -> Self {
        let lines = outcome
            .delivered_to(node)
            .iter()
            .map(|(round, env)| (*round, format!("{} → {}", env.from, describe(env))))
            .collect();
        Transcript { lines, node }
    }

    /// Builds the transcript of `node`'s deliveries from a recorded event
    /// stream (as produced by [`Runner::run_observed`]).
    ///
    /// Payloads render as recorded — the event stream already carries their
    /// `Debug` form — so this matches [`Transcript::for_node`] with
    /// [`debug_describe`] on the same run, without needing the node to have
    /// been watched.
    ///
    /// [`Runner::run_observed`]: crate::Runner::run_observed
    pub fn from_events(events: &[rmt_obs::RunEvent], node: NodeId) -> Self {
        let lines = events
            .iter()
            .filter_map(|ev| match ev {
                rmt_obs::RunEvent::Delivery {
                    round,
                    from,
                    to,
                    payload,
                } if *to == node.raw() => Some((*round, format!("v{from} → {payload}"))),
                _ => None,
            })
            .collect();
        Transcript { lines, node }
    }

    /// The number of recorded deliveries.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` if nothing was delivered (or the node was not watched).
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Renders the transcript, one round per block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "deliveries to {}:", self.node);
        let mut current = None;
        for (round, line) in &self.lines {
            if current != Some(*round) {
                let _ = writeln!(out, "  round {round}:");
                current = Some(*round);
            }
            let _ = writeln!(out, "    {line}");
        }
        out
    }
}

impl std::fmt::Display for Transcript {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Describes any payload via its `Debug` form (a reasonable default for
/// transcripts).
pub fn debug_describe<P: Payload>(env: &Envelope<P>) -> String {
    format!("{:?}", env.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::SilentAdversary;
    use crate::runner::Runner;
    use crate::testing::Flood;
    use rmt_graph::generators;
    use rmt_sets::NodeSet;

    #[test]
    fn transcript_groups_by_round() {
        let g = generators::path_graph(4);
        let out = Runner::new(
            g,
            |v| Flood::new(v, (v.index() == 0).then_some(7)),
            SilentAdversary::new(NodeSet::new()),
        )
        .watch(NodeSet::singleton(2.into()))
        .run();
        let t = Transcript::for_node(&out, 2.into(), debug_describe);
        assert!(!t.is_empty());
        let rendered = t.render();
        assert!(rendered.contains("deliveries to v2"));
        assert!(rendered.contains("round 2:"));
        assert!(rendered.contains("v1 → 7"));
        assert_eq!(t.to_string(), rendered);
    }

    #[test]
    fn unwatched_node_has_empty_transcript() {
        let g = generators::path_graph(3);
        let out = Runner::new(
            g,
            |v| Flood::new(v, (v.index() == 0).then_some(7)),
            SilentAdversary::new(NodeSet::new()),
        )
        .run();
        let t = Transcript::for_node(&out, 2.into(), debug_describe);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
