/// Complexity accounting for one run.
///
/// Message and bit counts cover everything handed to the scheduler along
/// valid edges; adversarial traffic is counted separately so the efficiency
/// experiments can report honest protocol cost in isolation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds actually executed (delivery rounds).
    pub rounds: u32,
    /// Messages sent by honest nodes.
    pub honest_messages: u64,
    /// Messages sent by the adversary (after validity filtering).
    pub adversarial_messages: u64,
    /// Total bits sent by honest nodes.
    pub honest_bits: u64,
    /// Adversarial envelopes dropped for violating the model (sender not
    /// corrupted, or no such edge).
    pub rejected_adversarial: u64,
    /// Messages sent by honest nodes per round (index 0 = initial sends).
    pub honest_messages_per_round: Vec<u64>,
}

impl Metrics {
    /// Total messages (honest + adversarial).
    pub fn total_messages(&self) -> u64 {
        self.honest_messages + self.adversarial_messages
    }

    /// Reconstructs the metrics of a run from its recorded event stream.
    ///
    /// This is the thin-adapter form: the scheduler's event stream carries
    /// everything the accounting needs, so a trace replays to the exact
    /// `Metrics` the run itself produced (enforced by a property test in
    /// `rmt-sim`).
    pub fn from_events(events: &[rmt_obs::RunEvent]) -> Self {
        use rmt_obs::RunEvent;
        let mut m = Metrics::default();
        for ev in events {
            match ev {
                RunEvent::RoundStart { .. } => m.honest_messages_per_round.push(0),
                RunEvent::HonestSend { bits, .. } => {
                    m.honest_messages += 1;
                    m.honest_bits += bits;
                    if let Some(last) = m.honest_messages_per_round.last_mut() {
                        *last += 1;
                    }
                }
                RunEvent::AdversarialSend { .. } => m.adversarial_messages += 1,
                RunEvent::RejectedSend { .. } => m.rejected_adversarial += 1,
                RunEvent::RunEnd { rounds } => m.rounds = *rounds,
                _ => {}
            }
        }
        m
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} honest msgs ({} bits), {} adversarial msgs",
            self.rounds, self.honest_messages, self.honest_bits, self.adversarial_messages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_display() {
        let m = Metrics {
            rounds: 3,
            honest_messages: 10,
            adversarial_messages: 2,
            honest_bits: 640,
            rejected_adversarial: 1,
            honest_messages_per_round: vec![4, 6],
        };
        assert_eq!(m.total_messages(), 12);
        assert!(m.to_string().contains("3 rounds"));
    }
}
