//! Length-prefix framing shared by every byte-moving codec in the
//! workspace.
//!
//! A frame on the wire is a little-endian `u32` length followed by exactly
//! that many body bytes. Lengths are capped at [`MAX_FRAME_BYTES`] so a
//! corrupt length field cannot force a giant allocation, and every decode
//! path returns a [`FramingError`] — never a panic — on truncated or
//! adversarial input.
//!
//! Two codecs ride on this helper: the `rmt-netd` link protocol (`Frame`)
//! and the `rmt-session` compact batch codec (`SessionFrame`). Keeping the
//! length-prefix logic here means there is exactly one implementation of
//! the cap check and the truncation arithmetic, exercised by both proptest
//! suites.

use std::io::{self, Read, Write};

/// Hard cap on a frame body, in bytes.
///
/// Generous for every payload in this workspace (a full `Knowledge` message
/// on a 64-node graph is a few KiB, a 64-payload session frame a few tens
/// of KiB) while keeping a corrupt length field harmless.
pub const MAX_FRAME_BYTES: usize = 1 << 24;

/// Why a length-prefixed frame failed to split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FramingError {
    /// The input ended before the announced length (or before the length
    /// prefix itself was complete).
    Truncated {
        /// Bytes needed to make progress.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// The announced body length.
        announced: usize,
    },
}

impl std::fmt::Display for FramingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FramingError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            FramingError::TooLarge { announced } => {
                write!(
                    f,
                    "frame length {announced} exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
        }
    }
}

impl std::error::Error for FramingError {}

/// Reserves a length prefix in `out` and returns the mark to close it with
/// [`end_frame`]. Body bytes are appended between the two calls.
pub fn begin_frame(out: &mut Vec<u8>) -> usize {
    let mark = out.len();
    out.extend_from_slice(&[0; 4]);
    mark
}

/// Patches the length prefix reserved at `mark` with the number of body
/// bytes appended since [`begin_frame`].
///
/// # Panics
///
/// If the body outgrew [`MAX_FRAME_BYTES`] — encoders own their body sizes,
/// so an oversized body is a programming error, not input-dependent.
pub fn end_frame(out: &mut [u8], mark: usize) {
    let body_len = out.len() - mark - 4;
    assert!(
        body_len <= MAX_FRAME_BYTES,
        "encoded frame body ({body_len} bytes) exceeds MAX_FRAME_BYTES"
    );
    out[mark..mark + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
}

/// Splits one frame off the front of `bytes`, returning the body slice and
/// the total number of bytes consumed (prefix + body). Never panics.
pub fn split_frame(bytes: &[u8]) -> Result<(&[u8], usize), FramingError> {
    if bytes.len() < 4 {
        return Err(FramingError::Truncated {
            needed: 4,
            got: bytes.len(),
        });
    }
    let body_len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if body_len > MAX_FRAME_BYTES {
        return Err(FramingError::TooLarge {
            announced: body_len,
        });
    }
    if bytes.len() < 4 + body_len {
        return Err(FramingError::Truncated {
            needed: 4 + body_len,
            got: bytes.len(),
        });
    }
    Ok((&bytes[4..4 + body_len], 4 + body_len))
}

/// Writes `body` to a stream as one length-prefixed frame.
pub fn write_frame_to<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    assert!(
        body.len() <= MAX_FRAME_BYTES,
        "frame body ({} bytes) exceeds MAX_FRAME_BYTES",
        body.len()
    );
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Reads exactly one frame body from a stream.
///
/// A clean EOF before the first byte maps to `ErrorKind::UnexpectedEof`; an
/// oversized length maps to `ErrorKind::InvalidData` carrying the
/// [`FramingError`], before any allocation happens.
pub fn read_frame_body<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let body_len = u32::from_le_bytes(len_buf) as usize;
    if body_len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FramingError::TooLarge {
                announced: body_len,
            },
        ));
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_begin_end_split() {
        let mut wire = Vec::new();
        for body in [&b""[..], b"x", b"hello frame"] {
            let mark = begin_frame(&mut wire);
            wire.extend_from_slice(body);
            end_frame(&mut wire, mark);
        }
        let mut at = 0;
        let mut bodies = Vec::new();
        while at < wire.len() {
            let (body, used) = split_frame(&wire[at..]).expect("stream split");
            bodies.push(body.to_vec());
            at += used;
        }
        assert_eq!(
            bodies,
            vec![b"".to_vec(), b"x".to_vec(), b"hello frame".to_vec()]
        );
    }

    #[test]
    fn truncations_error_without_panicking() {
        let mut wire = Vec::new();
        let mark = begin_frame(&mut wire);
        wire.extend_from_slice(b"abcdef");
        end_frame(&mut wire, mark);
        for cut in 0..wire.len() {
            assert!(split_frame(&wire[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.push(0);
        assert_eq!(
            split_frame(&wire),
            Err(FramingError::TooLarge {
                announced: u32::MAX as usize
            })
        );
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(
            read_frame_body(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn stream_io_round_trips() {
        let mut wire = Vec::new();
        write_frame_to(&mut wire, b"payload").expect("vec write");
        write_frame_to(&mut wire, b"").expect("vec write");
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame_body(&mut cursor).expect("read"), b"payload");
        assert_eq!(read_frame_body(&mut cursor).expect("read"), b"");
        assert_eq!(
            read_frame_body(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
