use rmt_graph::Graph;
use rmt_sets::{NodeId, NodeSet};

use crate::message::{Envelope, Payload, RoundInboxes};
use crate::protocol::{NodeContext, Protocol};

/// Full-information Byzantine control of a corruption set.
///
/// Every round the adversary sees *all* messages delivered in the network
/// (full information, the worst case the paper assumes) and produces the
/// outgoing messages of every corrupted node. The [`Runner`] enforces the
/// model's only physical constraints: adversarial envelopes must originate
/// at a corrupted node and travel along an edge; everything else — blocking,
/// altering, rerouting, forging trails, reporting fictitious topology — is
/// allowed.
///
/// [`Runner`]: crate::Runner
pub trait Adversary<P: Payload> {
    /// The corrupted node set (fixed for the run).
    fn corrupted(&self) -> &NodeSet;

    /// Outgoing adversarial messages before round 1 (mirrors
    /// [`Protocol::start`]).
    fn start(&mut self, graph: &Graph) -> Vec<Envelope<P>>;

    /// Outgoing adversarial messages for this round, given everything that
    /// was delivered.
    fn on_round(
        &mut self,
        round: u32,
        graph: &Graph,
        delivered: &RoundInboxes<P>,
    ) -> Vec<Envelope<P>>;

    /// `true` once the adversary will never send again (enables early
    /// quiescence detection). Conservative default: `false`.
    fn is_quiescent(&self) -> bool {
        false
    }
}

impl<P: Payload, A: Adversary<P> + ?Sized> Adversary<P> for Box<A> {
    fn corrupted(&self) -> &NodeSet {
        (**self).corrupted()
    }

    fn start(&mut self, graph: &Graph) -> Vec<Envelope<P>> {
        (**self).start(graph)
    }

    fn on_round(
        &mut self,
        round: u32,
        graph: &Graph,
        delivered: &RoundInboxes<P>,
    ) -> Vec<Envelope<P>> {
        (**self).on_round(round, graph, delivered)
    }

    fn is_quiescent(&self) -> bool {
        (**self).is_quiescent()
    }
}

/// The adversary that blocks completely: corrupted nodes never send.
///
/// Despite its simplicity this is the canonical *omission* attack; the
/// characterization experiments use it alongside the active attacks.
#[derive(Clone, Debug)]
pub struct SilentAdversary {
    corrupted: NodeSet,
}

impl SilentAdversary {
    /// Creates a silent adversary corrupting `corrupted`.
    pub fn new(corrupted: NodeSet) -> Self {
        SilentAdversary { corrupted }
    }
}

impl<P: Payload> Adversary<P> for SilentAdversary {
    fn corrupted(&self) -> &NodeSet {
        &self.corrupted
    }

    fn start(&mut self, _graph: &Graph) -> Vec<Envelope<P>> {
        Vec::new()
    }

    fn on_round(&mut self, _: u32, _: &Graph, _: &RoundInboxes<P>) -> Vec<Envelope<P>> {
        Vec::new()
    }

    fn is_quiescent(&self) -> bool {
        true
    }
}

/// An adversary defined by a closure over the full-information view.
///
/// The closure receives `(round, graph, delivered)` — round 0 is the start
/// call with empty inboxes — and returns the corrupted nodes' sends.
pub struct FnAdversary<P, F> {
    corrupted: NodeSet,
    f: F,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P, F> FnAdversary<P, F>
where
    P: Payload,
    F: FnMut(u32, &Graph, &RoundInboxes<P>) -> Vec<Envelope<P>>,
{
    /// Creates an adversary that corrupts `corrupted` and acts via `f`.
    pub fn new(corrupted: NodeSet, f: F) -> Self {
        FnAdversary {
            corrupted,
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<P, F> Adversary<P> for FnAdversary<P, F>
where
    P: Payload,
    F: FnMut(u32, &Graph, &RoundInboxes<P>) -> Vec<Envelope<P>>,
{
    fn corrupted(&self) -> &NodeSet {
        &self.corrupted
    }

    fn start(&mut self, graph: &Graph) -> Vec<Envelope<P>> {
        (self.f)(0, graph, &RoundInboxes::new(0))
    }

    fn on_round(
        &mut self,
        round: u32,
        graph: &Graph,
        delivered: &RoundInboxes<P>,
    ) -> Vec<Envelope<P>> {
        (self.f)(round, graph, delivered)
    }
}

/// An adversary that runs the *honest* protocol on every corrupted node and
/// then rewrites the outgoing traffic with a mapper.
///
/// This expresses the classical active attacks compactly: `FlipValue` maps
/// payload values, a forger rewrites trails, an omission adversary returns
/// `None` selectively. Returning `None` drops the message.
pub struct MapAdversary<Q: Protocol, F> {
    corrupted: NodeSet,
    instances: Vec<(NodeId, Q)>,
    mapper: F,
}

impl<Q, F> MapAdversary<Q, F>
where
    Q: Protocol,
    F: FnMut(u32, Envelope<Q::Payload>) -> Option<Envelope<Q::Payload>>,
{
    /// Creates the adversary: one honest `Q` instance per corrupted node
    /// (built by `make`), with outgoing traffic rewritten by `mapper`.
    pub fn new(corrupted: NodeSet, mut make: impl FnMut(NodeId) -> Q, mapper: F) -> Self {
        let instances = corrupted.iter().map(|v| (v, make(v))).collect();
        MapAdversary {
            corrupted,
            instances,
            mapper,
        }
    }

    fn ctx(graph: &Graph, v: NodeId, round: u32) -> NodeContext {
        NodeContext {
            id: v,
            round,
            neighbors: graph.neighbors(v).clone(),
        }
    }
}

impl<Q, F> Adversary<Q::Payload> for MapAdversary<Q, F>
where
    Q: Protocol,
    F: FnMut(u32, Envelope<Q::Payload>) -> Option<Envelope<Q::Payload>>,
{
    fn corrupted(&self) -> &NodeSet {
        &self.corrupted
    }

    fn start(&mut self, graph: &Graph) -> Vec<Envelope<Q::Payload>> {
        let mut out = Vec::new();
        for (v, proto) in &mut self.instances {
            let ctx = Self::ctx(graph, *v, 0);
            for (to, payload) in proto.start(&ctx) {
                if let Some(env) = (self.mapper)(0, Envelope::new(*v, to, payload)) {
                    out.push(env);
                }
            }
        }
        out
    }

    fn on_round(
        &mut self,
        round: u32,
        graph: &Graph,
        delivered: &RoundInboxes<Q::Payload>,
    ) -> Vec<Envelope<Q::Payload>> {
        let mut out = Vec::new();
        for (v, proto) in &mut self.instances {
            let ctx = Self::ctx(graph, *v, round);
            for (to, payload) in proto.on_round(&ctx, delivered.inbox(*v)) {
                if let Some(env) = (self.mapper)(round, Envelope::new(*v, to, payload)) {
                    out.push(env);
                }
            }
        }
        out
    }

    fn is_quiescent(&self) -> bool {
        self.instances.iter().all(|(_, p)| p.is_terminated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Flood;
    use rmt_graph::generators;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn silent_adversary_sends_nothing() {
        let g = generators::path_graph(3);
        let mut a = SilentAdversary::new(set(&[1]));
        assert!(Adversary::<u64>::start(&mut a, &g).is_empty());
        assert!(a.on_round(1, &g, &RoundInboxes::<u64>::new(3)).is_empty());
        assert!(Adversary::<u64>::is_quiescent(&a));
    }

    #[test]
    fn fn_adversary_passes_round_numbers() {
        let g = generators::path_graph(2);
        let mut rounds = Vec::new();
        {
            let mut a = FnAdversary::<u64, _>::new(set(&[0]), |r, _, _| {
                rounds.push(r);
                vec![]
            });
            let _ = a.start(&g);
            let _ = a.on_round(1, &g, &RoundInboxes::new(2));
            let _ = a.on_round(2, &g, &RoundInboxes::new(2));
        }
        assert_eq!(rounds, vec![0, 1, 2]);
    }

    #[test]
    fn map_adversary_rewrites_honest_traffic() {
        let g = generators::path_graph(3);
        // Node 0 is corrupted and would flood 7; the mapper flips it to 9.
        let mut a = MapAdversary::new(
            set(&[0]),
            |v| Flood::new(v, Some(7)),
            |_, mut env: Envelope<u64>| {
                env.payload = 9;
                Some(env)
            },
        );
        let out = a.start(&g);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, 9);
        assert_eq!(out[0].from, 0.into());
    }

    #[test]
    fn map_adversary_can_drop_messages() {
        let g = generators::path_graph(3);
        let mut a = MapAdversary::new(set(&[0]), |v| Flood::new(v, Some(7)), |_, _| None);
        assert!(a.start(&g).is_empty());
    }
}
