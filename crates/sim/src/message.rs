use std::fmt;

use rmt_sets::NodeId;

/// A protocol message body.
///
/// Payloads must report their encoded size so the simulator can account bit
/// complexity (experiment E6) without committing to a wire format.
pub trait Payload: Clone + PartialEq + fmt::Debug {
    /// The size of this payload on the wire, in bits.
    ///
    /// Estimates are fine as long as they are consistent across protocols
    /// being compared.
    fn encoded_bits(&self) -> usize;
}

impl Payload for u64 {
    fn encoded_bits(&self) -> usize {
        64
    }
}

/// A payload with a concrete byte codec, so it can cross a real socket.
///
/// The in-process schedulers never serialize payloads — [`Payload`] only
/// demands a size estimate. The networked backend (`rmt-netd`) moves real
/// bytes, so payloads it carries must round-trip through a self-delimiting
/// encoding. Decoding untrusted bytes must never panic: any malformed input
/// returns `Err` with a short description.
pub trait WirePayload: Payload {
    /// Appends this payload's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one payload from the front of `bytes`, returning it together
    /// with the number of bytes consumed.
    ///
    /// Implementations must tolerate arbitrary input: truncated, corrupt, or
    /// adversarial bytes yield a descriptive `Err`, never a panic.
    fn decode(bytes: &[u8]) -> Result<(Self, usize), String>;

    /// Encodes into a fresh buffer (convenience over [`encode`](Self::encode)).
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a buffer that must contain exactly one payload.
    fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let (value, used) = Self::decode(bytes)?;
        if used != bytes.len() {
            return Err(format!(
                "payload decode left {} trailing bytes",
                bytes.len() - used
            ));
        }
        Ok(value)
    }
}

impl WirePayload for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<(Self, usize), String> {
        let raw: [u8; 8] = bytes
            .get(..8)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| format!("u64 payload needs 8 bytes, got {}", bytes.len()))?;
        Ok((u64::from_le_bytes(raw), 8))
    }
}

/// A message in flight: sender, recipient, body.
///
/// Channels are authenticated: the [`Runner`] constructs the `from` field
/// from the true sender for honest traffic and rejects adversarial traffic
/// claiming a sender outside the corrupted set, so a `from` field can be
/// trusted by recipients exactly as the model prescribes.
///
/// [`Runner`]: crate::Runner
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<P> {
    /// The (authenticated) sender.
    pub from: NodeId,
    /// The recipient.
    pub to: NodeId,
    /// The message body.
    pub payload: P,
}

impl<P: Payload> Envelope<P> {
    /// Creates an envelope.
    pub fn new(from: NodeId, to: NodeId, payload: P) -> Self {
        Envelope { from, to, payload }
    }
}

/// A per-node log of deliveries: recipient ↦ [(round, envelope)].
///
/// Used by the runner's watch facility and the coupled executor.
pub type DeliveryLog<P> = std::collections::HashMap<rmt_sets::NodeId, Vec<(u32, Envelope<P>)>>;

/// The messages delivered to every node in one round, indexed by recipient.
///
/// A full-information adversary receives the whole structure each round.
#[derive(Clone, Debug)]
pub struct RoundInboxes<P> {
    inboxes: Vec<Vec<Envelope<P>>>,
}

impl<P: Payload> RoundInboxes<P> {
    /// Creates empty inboxes for `size` nodes.
    ///
    /// Public so external schedulers (`rmt-net`'s `NetRunner`) can assemble
    /// the per-round delivery structure the [`Adversary`](crate::Adversary)
    /// interface expects.
    pub fn new(size: usize) -> Self {
        RoundInboxes {
            inboxes: (0..size).map(|_| Vec::new()).collect(),
        }
    }

    /// Files a delivered envelope under its recipient.
    pub fn push(&mut self, env: Envelope<P>) {
        let idx = env.to.index();
        if idx >= self.inboxes.len() {
            self.inboxes.resize_with(idx + 1, Vec::new);
        }
        self.inboxes[idx].push(env);
    }

    /// Messages delivered to `v` this round.
    pub fn inbox(&self, v: NodeId) -> &[Envelope<P>] {
        self.inboxes.get(v.index()).map_or(&[], Vec::as_slice)
    }

    /// Total number of delivered messages.
    pub fn total(&self) -> usize {
        self.inboxes.iter().map(Vec::len).sum()
    }

    /// Returns `true` if nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.inboxes.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inboxes_group_by_recipient() {
        let mut r = RoundInboxes::new(2);
        r.push(Envelope::new(0.into(), 1.into(), 5u64));
        r.push(Envelope::new(2.into(), 1.into(), 6u64));
        r.push(Envelope::new(1.into(), 4.into(), 7u64)); // grows storage
        assert_eq!(r.inbox(1.into()).len(), 2);
        assert_eq!(r.inbox(4.into()).len(), 1);
        assert_eq!(r.inbox(0.into()).len(), 0);
        assert_eq!(r.inbox(9.into()).len(), 0);
        assert_eq!(r.total(), 3);
        assert!(!r.is_empty());
        assert!(RoundInboxes::<u64>::new(3).is_empty());
    }

    #[test]
    fn u64_payload_reports_bits() {
        assert_eq!(5u64.encoded_bits(), 64);
    }

    #[test]
    fn u64_wire_round_trip() {
        let v = 0xDEAD_BEEF_1234_5678u64;
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 8);
        assert_eq!(u64::from_bytes(&bytes), Ok(v));
    }

    #[test]
    fn u64_wire_decode_rejects_bad_input() {
        assert!(u64::from_bytes(&[1, 2, 3]).is_err());
        assert!(u64::from_bytes(&[0; 9]).is_err()); // trailing byte
        let (v, used) = u64::decode(&[0; 12]).unwrap();
        assert_eq!((v, used), (0, 8));
    }
}
