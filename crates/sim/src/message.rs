use std::fmt;

use rmt_sets::NodeId;

/// A protocol message body.
///
/// Payloads must report their encoded size so the simulator can account bit
/// complexity (experiment E6) without committing to a wire format.
pub trait Payload: Clone + PartialEq + fmt::Debug {
    /// The size of this payload on the wire, in bits.
    ///
    /// Estimates are fine as long as they are consistent across protocols
    /// being compared.
    fn encoded_bits(&self) -> usize;
}

impl Payload for u64 {
    fn encoded_bits(&self) -> usize {
        64
    }
}

/// A message in flight: sender, recipient, body.
///
/// Channels are authenticated: the [`Runner`] constructs the `from` field
/// from the true sender for honest traffic and rejects adversarial traffic
/// claiming a sender outside the corrupted set, so a `from` field can be
/// trusted by recipients exactly as the model prescribes.
///
/// [`Runner`]: crate::Runner
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<P> {
    /// The (authenticated) sender.
    pub from: NodeId,
    /// The recipient.
    pub to: NodeId,
    /// The message body.
    pub payload: P,
}

impl<P: Payload> Envelope<P> {
    /// Creates an envelope.
    pub fn new(from: NodeId, to: NodeId, payload: P) -> Self {
        Envelope { from, to, payload }
    }
}

/// A per-node log of deliveries: recipient ↦ [(round, envelope)].
///
/// Used by the runner's watch facility and the coupled executor.
pub type DeliveryLog<P> = std::collections::HashMap<rmt_sets::NodeId, Vec<(u32, Envelope<P>)>>;

/// The messages delivered to every node in one round, indexed by recipient.
///
/// A full-information adversary receives the whole structure each round.
#[derive(Clone, Debug)]
pub struct RoundInboxes<P> {
    inboxes: Vec<Vec<Envelope<P>>>,
}

impl<P: Payload> RoundInboxes<P> {
    /// Creates empty inboxes for `size` nodes.
    ///
    /// Public so external schedulers (`rmt-net`'s `NetRunner`) can assemble
    /// the per-round delivery structure the [`Adversary`](crate::Adversary)
    /// interface expects.
    pub fn new(size: usize) -> Self {
        RoundInboxes {
            inboxes: (0..size).map(|_| Vec::new()).collect(),
        }
    }

    /// Files a delivered envelope under its recipient.
    pub fn push(&mut self, env: Envelope<P>) {
        let idx = env.to.index();
        if idx >= self.inboxes.len() {
            self.inboxes.resize_with(idx + 1, Vec::new);
        }
        self.inboxes[idx].push(env);
    }

    /// Messages delivered to `v` this round.
    pub fn inbox(&self, v: NodeId) -> &[Envelope<P>] {
        self.inboxes.get(v.index()).map_or(&[], Vec::as_slice)
    }

    /// Total number of delivered messages.
    pub fn total(&self) -> usize {
        self.inboxes.iter().map(Vec::len).sum()
    }

    /// Returns `true` if nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.inboxes.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inboxes_group_by_recipient() {
        let mut r = RoundInboxes::new(2);
        r.push(Envelope::new(0.into(), 1.into(), 5u64));
        r.push(Envelope::new(2.into(), 1.into(), 6u64));
        r.push(Envelope::new(1.into(), 4.into(), 7u64)); // grows storage
        assert_eq!(r.inbox(1.into()).len(), 2);
        assert_eq!(r.inbox(4.into()).len(), 1);
        assert_eq!(r.inbox(0.into()).len(), 0);
        assert_eq!(r.inbox(9.into()).len(), 0);
        assert_eq!(r.total(), 3);
        assert!(!r.is_empty());
        assert!(RoundInboxes::<u64>::new(3).is_empty());
    }

    #[test]
    fn u64_payload_reports_bits() {
        assert_eq!(5u64.encoded_bits(), 64);
    }
}
