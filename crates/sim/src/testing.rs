//! A minimal flooding protocol used by the simulator's own tests, doctests
//! and the quickstart example.
//!
//! `Flood` is intentionally *not* Byzantine-tolerant: a node adopts the first
//! value it hears and forwards it once. It exists to exercise the scheduler
//! and to demonstrate, by contrast, what the safe protocols in `rmt-core`
//! add.

use rmt_sets::NodeId;

use crate::message::Envelope;
use crate::protocol::{NodeContext, Protocol};

/// Naive single-value flooding (adopt first, forward once).
#[derive(Clone, Debug)]
pub struct Flood {
    id: NodeId,
    value: Option<u64>,
    forwarded: bool,
}

impl Flood {
    /// Creates a flooding node; pass `Some(v)` for the originator.
    pub fn new(id: NodeId, value: Option<u64>) -> Self {
        Flood {
            id,
            value,
            forwarded: false,
        }
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl Protocol for Flood {
    type Payload = u64;
    type Decision = u64;

    fn start(&mut self, ctx: &NodeContext) -> Vec<(NodeId, u64)> {
        match self.value {
            Some(v) if !self.forwarded => {
                self.forwarded = true;
                ctx.neighbors.iter().map(|n| (n, v)).collect()
            }
            _ => Vec::new(),
        }
    }

    fn on_round(&mut self, ctx: &NodeContext, inbox: &[Envelope<u64>]) -> Vec<(NodeId, u64)> {
        if self.value.is_none() {
            if let Some(env) = inbox.first() {
                self.value = Some(env.payload);
            }
        }
        match self.value {
            Some(v) if !self.forwarded => {
                self.forwarded = true;
                ctx.neighbors.iter().map(|n| (n, v)).collect()
            }
            _ => Vec::new(),
        }
    }

    fn decision(&self) -> Option<u64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sets::NodeSet;

    #[test]
    fn originator_sends_once() {
        let mut f = Flood::new(0.into(), Some(4));
        let ctx = NodeContext {
            id: 0.into(),
            round: 0,
            neighbors: NodeSet::universe(3).difference(&NodeSet::singleton(0.into())),
        };
        assert_eq!(f.start(&ctx).len(), 2);
        assert!(f.start(&ctx).is_empty()); // second call: already forwarded
        assert_eq!(f.decision(), Some(4));
    }

    #[test]
    fn non_originator_adopts_first_value() {
        let mut f = Flood::new(1.into(), None);
        let ctx = NodeContext {
            id: 1.into(),
            round: 1,
            neighbors: NodeSet::singleton(2.into()),
        };
        assert_eq!(f.decision(), None);
        let inbox = vec![
            Envelope::new(0.into(), 1.into(), 8u64),
            Envelope::new(2.into(), 1.into(), 9u64),
        ];
        let out = f.on_round(&ctx, &inbox);
        assert_eq!(out, vec![(2.into(), 8)]);
        assert_eq!(f.decision(), Some(8));
    }
}
