//! Test support: a minimal flooding protocol used by the simulator's own
//! tests, doctests and the quickstart example, plus a [`Watchdog`] that keeps
//! stalled integration tests from hanging CI.
//!
//! `Flood` is intentionally *not* Byzantine-tolerant: a node adopts the first
//! value it hears and forwards it once. It exists to exercise the scheduler
//! and to demonstrate, by contrast, what the safe protocols in `rmt-core`
//! add.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rmt_sets::NodeId;

use crate::message::Envelope;
use crate::protocol::{NodeContext, Protocol};

/// A deadline for a test: if not disarmed in time, the whole process exits
/// with a diagnostic dump instead of hanging CI until the job-level timeout.
///
/// A scheduler bug that loses quiescence makes a `NetRunner`/`rmt-netd` test
/// spin (or block) forever; the test harness has no per-test timeout, so the
/// only symptom would be a CI job killed after tens of minutes with no clue
/// which test stalled or where. The watchdog runs a monitor thread that, past
/// the deadline, prints the test's latest [`note`](Watchdog::note) (e.g. the
/// instance being replayed or the round reached) to stderr and calls
/// [`std::process::exit`]`(101)` — a panic in the monitor thread would be
/// swallowed and fail nothing.
///
/// ```
/// use std::time::Duration;
/// use rmt_sim::testing::Watchdog;
///
/// let dog = Watchdog::arm("doc_example", Duration::from_secs(60));
/// dog.note("phase 1: building instance");
/// // ... the guarded work ...
/// dog.disarm();
/// ```
#[derive(Debug)]
pub struct Watchdog {
    state: Arc<Mutex<WatchdogState>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

#[derive(Debug)]
struct WatchdogState {
    disarmed: bool,
    note: String,
}

impl Watchdog {
    /// Arms a watchdog: unless [`disarm`](Self::disarm)ed (or dropped) within
    /// `limit`, the process prints a diagnostic naming `test` and exits.
    pub fn arm(test: &str, limit: Duration) -> Self {
        let state = Arc::new(Mutex::new(WatchdogState {
            disarmed: false,
            note: String::new(),
        }));
        let monitor = Arc::clone(&state);
        let test = test.to_string();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            // Poll rather than sleep the full limit so a disarmed watchdog's
            // monitor thread exits promptly and `disarm` can join it.
            let tick = Duration::from_millis(50).min(limit);
            loop {
                std::thread::sleep(tick);
                let state = monitor.lock().expect("watchdog state poisoned");
                if state.disarmed {
                    return;
                }
                if started.elapsed() >= limit {
                    eprintln!(
                        "watchdog: test `{test}` exceeded {limit:?}; \
                         last progress note: {}",
                        if state.note.is_empty() {
                            "<none>"
                        } else {
                            &state.note
                        }
                    );
                    eprintln!(
                        "watchdog: a stalled scheduler usually means lost \
                         quiescence (inflight queue never drains) or a \
                         barrier waiting on a dead peer"
                    );
                    std::process::exit(101);
                }
            }
        });
        Watchdog {
            state,
            handle: Some(handle),
        }
    }

    /// Records a progress note included in the diagnostic if the deadline
    /// fires. Cheap; call at each phase boundary of the guarded test.
    pub fn note(&self, note: impl Into<String>) {
        self.state.lock().expect("watchdog state poisoned").note = note.into();
    }

    /// Cancels the deadline and joins the monitor thread.
    pub fn disarm(mut self) {
        self.cancel();
    }

    fn cancel(&mut self) {
        self.state.lock().expect("watchdog state poisoned").disarmed = true;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.cancel();
    }
}

/// Naive single-value flooding (adopt first, forward once).
#[derive(Clone, Debug)]
pub struct Flood {
    id: NodeId,
    value: Option<u64>,
    forwarded: bool,
}

impl Flood {
    /// Creates a flooding node; pass `Some(v)` for the originator.
    pub fn new(id: NodeId, value: Option<u64>) -> Self {
        Flood {
            id,
            value,
            forwarded: false,
        }
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl Protocol for Flood {
    type Payload = u64;
    type Decision = u64;

    fn start(&mut self, ctx: &NodeContext) -> Vec<(NodeId, u64)> {
        match self.value {
            Some(v) if !self.forwarded => {
                self.forwarded = true;
                ctx.neighbors.iter().map(|n| (n, v)).collect()
            }
            _ => Vec::new(),
        }
    }

    fn on_round(&mut self, ctx: &NodeContext, inbox: &[Envelope<u64>]) -> Vec<(NodeId, u64)> {
        if self.value.is_none() {
            if let Some(env) = inbox.first() {
                self.value = Some(env.payload);
            }
        }
        match self.value {
            Some(v) if !self.forwarded => {
                self.forwarded = true;
                ctx.neighbors.iter().map(|n| (n, v)).collect()
            }
            _ => Vec::new(),
        }
    }

    fn decision(&self) -> Option<u64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sets::NodeSet;

    #[test]
    fn originator_sends_once() {
        let mut f = Flood::new(0.into(), Some(4));
        let ctx = NodeContext {
            id: 0.into(),
            round: 0,
            neighbors: NodeSet::universe(3).difference(&NodeSet::singleton(0.into())),
        };
        assert_eq!(f.start(&ctx).len(), 2);
        assert!(f.start(&ctx).is_empty()); // second call: already forwarded
        assert_eq!(f.decision(), Some(4));
    }

    #[test]
    fn watchdog_disarm_before_deadline_is_silent() {
        let dog = Watchdog::arm("watchdog_disarm", std::time::Duration::from_secs(30));
        dog.note("running");
        dog.disarm();
    }

    #[test]
    fn watchdog_drop_cancels() {
        let _dog = Watchdog::arm("watchdog_drop", std::time::Duration::from_secs(30));
    }

    #[test]
    fn non_originator_adopts_first_value() {
        let mut f = Flood::new(1.into(), None);
        let ctx = NodeContext {
            id: 1.into(),
            round: 1,
            neighbors: NodeSet::singleton(2.into()),
        };
        assert_eq!(f.decision(), None);
        let inbox = vec![
            Envelope::new(0.into(), 1.into(), 8u64),
            Envelope::new(2.into(), 1.into(), 9u64),
        ];
        let out = f.on_round(&ctx, &inbox);
        assert_eq!(out, vec![(2.into(), 8)]);
        assert_eq!(f.decision(), Some(8));
    }
}
