//! Synchronous round-based message-passing simulation with Byzantine
//! adversaries.
//!
//! The RMT paper's model is a synchronous network of authenticated channels
//! where an unbounded Byzantine adversary controls an admissible corruption
//! set with *full information*. This crate provides exactly that executable
//! model:
//!
//! * [`Protocol`] — the per-node deterministic state machine interface;
//! * [`Runner`] — the synchronous scheduler: messages sent in round `r` are
//!   delivered in round `r+1`, only along edges, with the true sender
//!   identity (authenticated channels are enforced by construction);
//! * [`Adversary`] — full-information Byzantine control of the corrupted
//!   set, with building blocks ([`SilentAdversary`], [`FnAdversary`],
//!   [`MapAdversary`]) from which the protocol-specific attacks in
//!   `rmt-core` are assembled;
//! * [`CoupledRunner`] — the two-run lockstep executor that turns the
//!   indistinguishability arguments of the paper (Figure 2; proofs of
//!   Theorems 3 and 8) into running attacks;
//! * [`Metrics`] — message/bit/round accounting for the efficiency
//!   experiments.
//!
//! # Example
//!
//! A one-value flooding protocol on a path (full example in the tests):
//!
//! ```
//! use rmt_graph::generators;
//! use rmt_sets::NodeSet;
//! use rmt_sim::{testing::Flood, Runner, SilentAdversary};
//!
//! let g = generators::path_graph(4);
//! let outcome = Runner::new(
//!     g,
//!     |v| Flood::new(v, (v.index() == 0).then_some(7)),
//!     SilentAdversary::new(NodeSet::new()),
//! )
//! .run();
//! assert_eq!(outcome.decision(3.into()), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod coupled;
pub mod framing;
mod message;
mod metrics;
mod protocol;
mod runner;
pub mod testing;
pub mod trace;
pub mod transport;

pub use adversary::{Adversary, FnAdversary, MapAdversary, SilentAdversary};
pub use coupled::{CoupledOutcome, CoupledRunner};
pub use message::{DeliveryLog, Envelope, Payload, RoundInboxes, WirePayload};
pub use metrics::Metrics;
pub use protocol::{NodeContext, Protocol};
#[doc(hidden)]
pub use runner::emit_round_end;
pub use runner::{RunOutcome, Runner};
pub use trace::Transcript;
pub use transport::{default_max_rounds, sweep_decisions, Transport, MAX_ROUNDS_SLACK};
