use std::collections::HashMap;

use rmt_graph::Graph;
use rmt_obs::{NoopObserver, RunEvent, RunObserver};
use rmt_sets::{NodeId, NodeSet};

use crate::message::{DeliveryLog, Envelope};
use crate::protocol::{NodeContext, Protocol};

/// The two-run lockstep executor behind the paper's indistinguishability
/// arguments (Figure 2; proofs of Theorems 3 and 8).
///
/// Two runs evolve simultaneously on the same graph:
///
/// * run **e**: scenario-`e` parameters (say dealer value 0, structure 𝒵),
///   corruption set `C₁`;
/// * run **e′**: scenario-`e′` parameters (dealer value 1, structure 𝒵′),
///   corruption set `C₂`.
///
/// Every node has *two* protocol instances — `a[v]` with scenario-e
/// parameters driven by e's messages, and `b[v]` with scenario-e′ parameters
/// driven by e′'s messages. The corrupted nodes copy their honest alter ego
/// from the other run: in e, `C₁` sends whatever `b[C₁]` sends (their honest
/// behaviour in e′); in e′, `C₂` sends whatever `a[C₂]` sends.
///
/// When `C₁ ∪ C₂` is a D–R cut this construction makes the receiver-side
/// component's deliveries **identical** in both runs, which
/// [`CoupledOutcome::views_equal`] checks and the impossibility experiments
/// assert.
pub struct CoupledRunner<Q: Protocol> {
    graph: Graph,
    c1: NodeSet,
    c2: NodeSet,
    a: Vec<Option<Q>>,
    b: Vec<Option<Q>>,
    max_rounds: u32,
}

/// The result of a coupled run pair.
pub struct CoupledOutcome<Q: Protocol> {
    a: Vec<Option<Q>>,
    b: Vec<Option<Q>>,
    c1: NodeSet,
    c2: NodeSet,
    /// Rounds executed (same for both runs by construction).
    pub rounds: u32,
    delivered_e: DeliveryLog<Q::Payload>,
    delivered_e2: DeliveryLog<Q::Payload>,
}

impl<Q: Protocol> CoupledRunner<Q> {
    /// Creates the coupled pair.
    ///
    /// `make_e(v)` builds v's instance with scenario-e parameters, and
    /// `make_e2(v)` with scenario-e′ parameters, for **every** node — the
    /// corrupted sets select which instance feeds which run.
    ///
    /// # Panics
    ///
    /// Panics if `c1` and `c2` intersect (the construction needs the
    /// partition `C = C₁ ∪ C₂` of a cut).
    pub fn new(
        graph: Graph,
        c1: NodeSet,
        c2: NodeSet,
        mut make_e: impl FnMut(NodeId) -> Q,
        mut make_e2: impl FnMut(NodeId) -> Q,
    ) -> Self {
        assert!(c1.is_disjoint(&c2), "C₁ and C₂ must be disjoint");
        let size = graph.nodes().last().map_or(0, |v| v.index() + 1);
        let mut a: Vec<Option<Q>> = (0..size).map(|_| None).collect();
        let mut b: Vec<Option<Q>> = (0..size).map(|_| None).collect();
        for v in graph.nodes() {
            a[v.index()] = Some(make_e(v));
            b[v.index()] = Some(make_e2(v));
        }
        let max_rounds = crate::transport::default_max_rounds(graph.node_count());
        CoupledRunner {
            graph,
            c1,
            c2,
            a,
            b,
            max_rounds,
        }
    }

    /// Overrides the round limit.
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Executes both runs to completion.
    pub fn run(self) -> CoupledOutcome<Q> {
        self.run_observed(&mut NoopObserver, &mut NoopObserver)
    }

    /// Executes both runs to completion, streaming run e through `obs_e`
    /// and run e′ through `obs_e2`.
    ///
    /// Each observer sees its run exactly as [`Runner::run_observed`] would
    /// render a single run: corrupted nodes' sends appear as
    /// [`RunEvent::AdversarialSend`] (in e that is `C₁` replaying its
    /// e′-honest alter ego, and symmetrically in e′), honest traffic as
    /// [`RunEvent::HonestSend`], every delivery as [`RunEvent::Delivery`].
    /// Diffing the two streams restricted to the receiver's view is the
    /// mechanical Figure 2 check.
    ///
    /// [`Runner::run_observed`]: crate::Runner::run_observed
    pub fn run_observed<O1, O2>(mut self, obs_e: &mut O1, obs_e2: &mut O2) -> CoupledOutcome<Q>
    where
        O1: RunObserver,
        O2: RunObserver,
    {
        let mut delivered_e: DeliveryLog<Q::Payload> = HashMap::new();
        let mut delivered_e2: DeliveryLog<Q::Payload> = HashMap::new();
        let size = self.a.len();
        let mut decided_e = vec![false; size];
        let mut decided_e2 = vec![false; size];

        if O1::ACTIVE {
            obs_e.on_event(&RunEvent::RunStart {
                nodes: self.graph.node_count() as u32,
                corrupted: self.c1.iter().map(NodeId::raw).collect(),
            });
            obs_e.on_event(&RunEvent::RoundStart { round: 0 });
        }
        if O2::ACTIVE {
            obs_e2.on_event(&RunEvent::RunStart {
                nodes: self.graph.node_count() as u32,
                corrupted: self.c2.iter().map(NodeId::raw).collect(),
            });
            obs_e2.on_event(&RunEvent::RoundStart { round: 0 });
        }

        fn emit_sends<P: crate::message::Payload, O: RunObserver>(
            obs: &mut O,
            round: u32,
            adversarial: bool,
            envs: &[Envelope<P>],
        ) {
            if !O::ACTIVE {
                return;
            }
            for env in envs {
                if adversarial {
                    obs.on_event(&RunEvent::AdversarialSend {
                        round,
                        from: env.from.raw(),
                        to: env.to.raw(),
                        payload: format!("{:?}", env.payload),
                    });
                } else {
                    obs.on_event(&RunEvent::HonestSend {
                        round,
                        from: env.from.raw(),
                        to: env.to.raw(),
                        bits: env.payload.encoded_bits() as u64,
                        payload: format!("{:?}", env.payload),
                    });
                }
            }
        }

        // outs_a[v] = messages produced by instance a[v] this round (run-e
        // dynamics); outs_b[v] likewise for e′.
        let mut inflight_e: Vec<Envelope<Q::Payload>> = Vec::new();
        let mut inflight_e2: Vec<Envelope<Q::Payload>> = Vec::new();

        let graph = self.graph.clone();
        let ctx = |v: NodeId, round: u32| NodeContext {
            id: v,
            round,
            neighbors: graph.neighbors(v).clone(),
        };

        // Round 0.
        for v in graph.nodes() {
            let outs_a: Vec<_> = self.a[v.index()]
                .as_mut()
                .expect("instance exists")
                .start(&ctx(v, 0))
                .into_iter()
                .filter(|(to, _)| graph.has_edge(v, *to))
                .map(|(to, p)| Envelope::new(v, to, p))
                .collect();
            let outs_b: Vec<_> = self.b[v.index()]
                .as_mut()
                .expect("instance exists")
                .start(&ctx(v, 0))
                .into_iter()
                .filter(|(to, _)| graph.has_edge(v, *to))
                .map(|(to, p)| Envelope::new(v, to, p))
                .collect();
            // Run e takes a[v] unless v ∈ C₁ (then its e′-honest self).
            let chosen_e = if self.c1.contains(v) {
                &outs_b
            } else {
                &outs_a
            };
            emit_sends(obs_e, 0, self.c1.contains(v), chosen_e);
            inflight_e.extend(chosen_e.iter().cloned());
            // Run e′ takes b[v] unless v ∈ C₂.
            let chosen_e2 = if self.c2.contains(v) {
                &outs_a
            } else {
                &outs_b
            };
            emit_sends(obs_e2, 0, self.c2.contains(v), chosen_e2);
            inflight_e2.extend(chosen_e2.iter().cloned());
        }
        if O1::ACTIVE {
            self.emit_new_decisions_e(obs_e, 0, &mut decided_e);
        }
        if O2::ACTIVE {
            self.emit_new_decisions_e2(obs_e2, 0, &mut decided_e2);
        }

        let mut rounds = 0;
        for round in 1..=self.max_rounds {
            if inflight_e.is_empty() && inflight_e2.is_empty() {
                break;
            }
            rounds = round;
            if O1::ACTIVE {
                obs_e.on_event(&RunEvent::RoundStart { round });
            }
            if O2::ACTIVE {
                obs_e2.on_event(&RunEvent::RoundStart { round });
            }
            let mut inbox_e: HashMap<NodeId, Vec<Envelope<Q::Payload>>> = HashMap::new();
            for env in inflight_e.drain(..) {
                if O1::ACTIVE {
                    obs_e.on_event(&RunEvent::Delivery {
                        round,
                        from: env.from.raw(),
                        to: env.to.raw(),
                        payload: format!("{:?}", env.payload),
                    });
                }
                delivered_e
                    .entry(env.to)
                    .or_default()
                    .push((round, env.clone()));
                inbox_e.entry(env.to).or_default().push(env);
            }
            let mut inbox_e2: HashMap<NodeId, Vec<Envelope<Q::Payload>>> = HashMap::new();
            for env in inflight_e2.drain(..) {
                if O2::ACTIVE {
                    obs_e2.on_event(&RunEvent::Delivery {
                        round,
                        from: env.from.raw(),
                        to: env.to.raw(),
                        payload: format!("{:?}", env.payload),
                    });
                }
                delivered_e2
                    .entry(env.to)
                    .or_default()
                    .push((round, env.clone()));
                inbox_e2.entry(env.to).or_default().push(env);
            }

            for v in graph.nodes() {
                let empty = Vec::new();
                let outs_a: Vec<_> = self.a[v.index()]
                    .as_mut()
                    .expect("instance exists")
                    .on_round(&ctx(v, round), inbox_e.get(&v).unwrap_or(&empty))
                    .into_iter()
                    .filter(|(to, _)| graph.has_edge(v, *to))
                    .map(|(to, p)| Envelope::new(v, to, p))
                    .collect();
                let outs_b: Vec<_> = self.b[v.index()]
                    .as_mut()
                    .expect("instance exists")
                    .on_round(&ctx(v, round), inbox_e2.get(&v).unwrap_or(&empty))
                    .into_iter()
                    .filter(|(to, _)| graph.has_edge(v, *to))
                    .map(|(to, p)| Envelope::new(v, to, p))
                    .collect();
                let chosen_e = if self.c1.contains(v) {
                    &outs_b
                } else {
                    &outs_a
                };
                emit_sends(obs_e, round, self.c1.contains(v), chosen_e);
                inflight_e.extend(chosen_e.iter().cloned());
                let chosen_e2 = if self.c2.contains(v) {
                    &outs_a
                } else {
                    &outs_b
                };
                emit_sends(obs_e2, round, self.c2.contains(v), chosen_e2);
                inflight_e2.extend(chosen_e2.iter().cloned());
            }
            if O1::ACTIVE {
                self.emit_new_decisions_e(obs_e, round, &mut decided_e);
            }
            if O2::ACTIVE {
                self.emit_new_decisions_e2(obs_e2, round, &mut decided_e2);
            }
        }

        if O1::ACTIVE {
            obs_e.on_event(&RunEvent::RunEnd { rounds });
        }
        if O2::ACTIVE {
            obs_e2.on_event(&RunEvent::RunEnd { rounds });
        }

        CoupledOutcome {
            a: self.a,
            b: self.b,
            c1: self.c1,
            c2: self.c2,
            rounds,
            delivered_e,
            delivered_e2,
        }
    }

    /// Emits run-e decisions newly reached this round (honest = not in C₁).
    fn emit_new_decisions_e<O: RunObserver>(&self, obs: &mut O, round: u32, decided: &mut [bool]) {
        for v in self.graph.nodes() {
            if decided[v.index()] || self.c1.contains(v) {
                continue;
            }
            if let Some(d) = self.a[v.index()].as_ref().and_then(Protocol::decision) {
                decided[v.index()] = true;
                obs.on_event(&RunEvent::Decision {
                    round,
                    node: v.raw(),
                    value: format!("{d:?}"),
                });
            }
        }
    }

    /// Emits run-e′ decisions newly reached this round (honest = not in C₂).
    fn emit_new_decisions_e2<O: RunObserver>(&self, obs: &mut O, round: u32, decided: &mut [bool]) {
        for v in self.graph.nodes() {
            if decided[v.index()] || self.c2.contains(v) {
                continue;
            }
            if let Some(d) = self.b[v.index()].as_ref().and_then(Protocol::decision) {
                decided[v.index()] = true;
                obs.on_event(&RunEvent::Decision {
                    round,
                    node: v.raw(),
                    value: format!("{d:?}"),
                });
            }
        }
    }
}

impl<Q: Protocol> CoupledOutcome<Q> {
    /// The decision of honest node `v` in run e (`None` if `v ∈ C₁`).
    pub fn decision_e(&self, v: NodeId) -> Option<Q::Decision> {
        if self.c1.contains(v) {
            return None;
        }
        self.a
            .get(v.index())
            .and_then(Option::as_ref)
            .and_then(Protocol::decision)
    }

    /// The decision of honest node `v` in run e′ (`None` if `v ∈ C₂`).
    pub fn decision_e2(&self, v: NodeId) -> Option<Q::Decision> {
        if self.c2.contains(v) {
            return None;
        }
        self.b
            .get(v.index())
            .and_then(Option::as_ref)
            .and_then(Protocol::decision)
    }

    /// Messages delivered to `v` in run e, as `(round, envelope)`.
    pub fn delivered_e(&self, v: NodeId) -> &[(u32, Envelope<Q::Payload>)] {
        self.delivered_e.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Messages delivered to `v` in run e′.
    pub fn delivered_e2(&self, v: NodeId) -> &[(u32, Envelope<Q::Payload>)] {
        self.delivered_e2.get(&v).map_or(&[], Vec::as_slice)
    }

    /// `true` if node `v` received exactly the same messages, in the same
    /// rounds, in both runs — the indistinguishability the lower-bound
    /// constructions establish for the receiver-side component.
    pub fn views_equal(&self, v: NodeId) -> bool {
        self.delivered_e(v) == self.delivered_e2(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Flood;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    /// Path 0-1-2-3-4: D=0, R=4, cut {1} ∪ {3}? Take the classic two-path
    /// diamond instead: D=0, two internal 1,2 in parallel, R=3. C₁={1},
    /// C₂={2} is a cut partition; flooding from D cannot let R distinguish
    /// the runs.
    fn diamond() -> Graph {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    #[test]
    fn receiver_views_coincide_across_the_cut() {
        let make_e = |v: NodeId| Flood::new(v, (v.index() == 0).then_some(0));
        let make_e2 = |v: NodeId| Flood::new(v, (v.index() == 0).then_some(1));
        let out = CoupledRunner::new(diamond(), set(&[1]), set(&[2]), make_e, make_e2).run();
        // R = 3 sees identical deliveries: from 1 it gets the e′ value (1)
        // in run e and the e′ value in run e′; from 2 the e value in both.
        assert!(out.views_equal(3.into()));
        assert!(!out.delivered_e(3.into()).is_empty());
        // Flood (which is not a safe RMT protocol) decides inconsistently —
        // demonstrating exactly the attack the construction encodes.
        let d_e = out.decision_e(3.into());
        let d_e2 = out.decision_e2(3.into());
        assert_eq!(d_e, d_e2);
        assert!(d_e == Some(0) || d_e == Some(1));
    }

    #[test]
    fn corrupted_nodes_report_no_decision() {
        let make_e = |v: NodeId| Flood::new(v, (v.index() == 0).then_some(0));
        let make_e2 = |v: NodeId| Flood::new(v, (v.index() == 0).then_some(1));
        let out = CoupledRunner::new(diamond(), set(&[1]), set(&[2]), make_e, make_e2).run();
        assert_eq!(out.decision_e(1.into()), None);
        assert_eq!(out.decision_e2(2.into()), None);
        // The dealer itself decided its own value in each run.
        assert_eq!(out.decision_e(0.into()), Some(0));
        assert_eq!(out.decision_e2(0.into()), Some(1));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_corruption_sets_are_rejected() {
        let make = |v: NodeId| Flood::new(v, None);
        let _ = CoupledRunner::new(diamond(), set(&[1]), set(&[1]), make, make);
    }
}
