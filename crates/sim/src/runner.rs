use std::collections::HashMap;

use rmt_graph::Graph;
use rmt_obs::{Clock, NoopObserver, RunEvent, RunObserver};
use rmt_sets::{NodeId, NodeSet};

use crate::adversary::Adversary;
use crate::message::{DeliveryLog, Envelope, RoundInboxes};
use crate::metrics::Metrics;
use crate::protocol::{NodeContext, Protocol};
use crate::transport::{default_max_rounds, sweep_decisions, Transport};

/// The synchronous scheduler.
///
/// Messages sent in round `r` are delivered at the start of round `r+1`;
/// honest nodes run their [`Protocol`], corrupted nodes are driven by the
/// [`Adversary`] with full information. The runner enforces the physical
/// model: traffic flows only along edges of the graph, honest senders are
/// stamped authentically, and adversarial envelopes claiming an honest
/// sender or a non-edge are rejected (and counted in
/// [`Metrics::rejected_adversarial`]).
///
/// The run stops at quiescence (nothing delivered and nothing sent) or after
/// `max_rounds` (default [`default_max_rounds`], enough for every
/// trail-bounded protocol in this workspace).
pub struct Runner<Q: Protocol, A> {
    graph: Graph,
    protocols: Vec<Option<Q>>,
    adversary: A,
    max_rounds: u32,
    watch: NodeSet,
    profile: Option<Clock>,
}

/// The result of a completed run.
pub struct RunOutcome<Q: Protocol> {
    protocols: Vec<Option<Q>>,
    corrupted: NodeSet,
    /// Complexity metrics for the run.
    pub metrics: Metrics,
    watched: DeliveryLog<Q::Payload>,
}

impl<Q, A> Runner<Q, A>
where
    Q: Protocol,
    A: Adversary<Q::Payload>,
{
    /// Creates a runner on `graph`; honest nodes get protocol instances from
    /// `make`, nodes in `adversary.corrupted()` are controlled by the
    /// adversary.
    pub fn new(graph: Graph, mut make: impl FnMut(NodeId) -> Q, adversary: A) -> Self {
        let size = graph.nodes().last().map_or(0, |v| v.index() + 1);
        let mut protocols: Vec<Option<Q>> = (0..size).map(|_| None).collect();
        for v in graph.nodes() {
            if !adversary.corrupted().contains(v) {
                protocols[v.index()] = Some(make(v));
            }
        }
        let max_rounds = default_max_rounds(graph.node_count());
        Runner {
            graph,
            protocols,
            adversary,
            max_rounds,
            watch: NodeSet::new(),
            profile: None,
        }
    }

    /// Overrides the round limit.
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Records every message delivered to the given nodes (retrievable via
    /// [`RunOutcome::delivered_to`]).
    pub fn watch(mut self, nodes: NodeSet) -> Self {
        self.watch = nodes;
        self
    }

    /// Enables per-round profiling: an observed run additionally emits one
    /// [`RunEvent::RoundEnd`] per round carrying the round's latency
    /// (stamped by `clock`) and its wire deltas (messages and bits admitted
    /// that round).
    ///
    /// Off by default so unprofiled observed runs emit byte-identical event
    /// streams to earlier releases. With a virtual clock
    /// ([`Clock::virtual_ns`]) the latencies themselves are deterministic.
    pub fn with_profiling(mut self, clock: Clock) -> Self {
        self.profile = Some(clock);
        self
    }

    /// Executes the run to completion.
    pub fn run(self) -> RunOutcome<Q> {
        self.run_observed(&mut NoopObserver)
    }

    /// Executes the run to completion, streaming every observable step
    /// through `observer`.
    ///
    /// With the default [`NoopObserver`] (`ACTIVE = false`) this
    /// monomorphizes to exactly the uninstrumented scheduler — events are
    /// neither constructed nor dispatched — so [`Runner::run`] simply
    /// delegates here. The event stream carries everything the run's
    /// [`Metrics`] and transcripts need; see [`Metrics::from_events`] and
    /// [`Transcript::from_events`](crate::Transcript::from_events).
    pub fn run_observed<O: RunObserver>(mut self, observer: &mut O) -> RunOutcome<Q> {
        let size = self.protocols.len();
        let mut metrics = Metrics::default();
        let mut watched: DeliveryLog<Q::Payload> = HashMap::new();
        let mut decided = vec![false; size];
        let profile = if O::ACTIVE { self.profile.take() } else { None };
        let mut round_start_ns = profile.as_ref().map_or(0, Clock::now_ns);
        let mut wire_seen = (0u64, 0u64); // (messages, bits) already billed

        if O::ACTIVE {
            let corrupted: Vec<u32> = self.adversary.corrupted().iter().map(NodeId::raw).collect();
            observer.on_event(&RunEvent::RunStart {
                nodes: self.graph.node_count() as u32,
                corrupted,
            });
            observer.on_event(&RunEvent::RoundStart { round: 0 });
        }

        // Round 0: initial sends.
        let mut inflight: Vec<Envelope<Q::Payload>> = Vec::new();
        let mut honest_this_round = 0u64;
        for v in self.graph.nodes() {
            if let Some(proto) = self.protocols[v.index()].as_mut() {
                let ctx = NodeContext {
                    id: v,
                    round: 0,
                    neighbors: self.graph.neighbors(v).clone(),
                };
                let sends = proto.start(&ctx);
                inflight.extend(Transport::new(&self.graph).admit_honest(
                    0,
                    v,
                    sends,
                    &mut metrics,
                    &mut honest_this_round,
                    observer,
                ));
            }
        }
        let adversarial = self.adversary.start(&self.graph);
        inflight.extend(Transport::new(&self.graph).admit_adversarial(
            0,
            self.adversary.corrupted(),
            adversarial,
            &mut metrics,
            observer,
        ));
        metrics.honest_messages_per_round.push(honest_this_round);
        if O::ACTIVE {
            sweep_decisions(&self.graph, &self.protocols, 0, &mut decided, observer);
        }
        if let Some(clock) = &profile {
            emit_round_end(
                0,
                clock,
                &mut round_start_ns,
                &metrics,
                &mut wire_seen,
                0,
                observer,
            );
        }

        for round in 1..=self.max_rounds {
            if inflight.is_empty() {
                break;
            }
            metrics.rounds = round;
            if O::ACTIVE {
                observer.on_event(&RunEvent::RoundStart { round });
            }
            let mut delivered = RoundInboxes::new(size);
            for env in inflight.drain(..) {
                if O::ACTIVE {
                    observer.on_event(&RunEvent::Delivery {
                        round,
                        from: env.from.raw(),
                        to: env.to.raw(),
                        payload: format!("{:?}", env.payload),
                    });
                }
                if self.watch.contains(env.to) {
                    watched
                        .entry(env.to)
                        .or_default()
                        .push((round, env.clone()));
                }
                delivered.push(env);
            }

            let mut outgoing: Vec<Envelope<Q::Payload>> = Vec::new();
            let mut honest_this_round = 0u64;
            for v in self.graph.nodes() {
                if let Some(proto) = self.protocols[v.index()].as_mut() {
                    let ctx = NodeContext {
                        id: v,
                        round,
                        neighbors: self.graph.neighbors(v).clone(),
                    };
                    let sends = proto.on_round(&ctx, delivered.inbox(v));
                    outgoing.extend(Transport::new(&self.graph).admit_honest(
                        round,
                        v,
                        sends,
                        &mut metrics,
                        &mut honest_this_round,
                        observer,
                    ));
                }
            }
            let adversarial = self.adversary.on_round(round, &self.graph, &delivered);
            outgoing.extend(Transport::new(&self.graph).admit_adversarial(
                round,
                self.adversary.corrupted(),
                adversarial,
                &mut metrics,
                observer,
            ));
            metrics.honest_messages_per_round.push(honest_this_round);
            if O::ACTIVE {
                sweep_decisions(&self.graph, &self.protocols, round, &mut decided, observer);
            }
            if let Some(clock) = &profile {
                emit_round_end(
                    round,
                    clock,
                    &mut round_start_ns,
                    &metrics,
                    &mut wire_seen,
                    0,
                    observer,
                );
            }
            inflight = outgoing;
        }

        if O::ACTIVE {
            observer.on_event(&RunEvent::RunEnd {
                rounds: metrics.rounds,
            });
        }

        RunOutcome {
            protocols: self.protocols,
            corrupted: self.adversary.corrupted().clone(),
            metrics,
            watched,
        }
    }
}

/// Emits one [`RunEvent::RoundEnd`] billing everything admitted since the
/// previous round boundary: latency from `round_start_ns` to now (which
/// becomes the next boundary), message/bit deltas against `wire_seen`, plus
/// `drops` destroyed messages (always 0 for the fault-free [`Runner`]; the
/// fault-injecting scheduler passes its per-round loss).
///
/// Exported for the `rmt-net` scheduler; not a stable public API.
#[doc(hidden)]
pub fn emit_round_end<O: RunObserver>(
    round: u32,
    clock: &Clock,
    round_start_ns: &mut u64,
    metrics: &Metrics,
    wire_seen: &mut (u64, u64),
    drops: u64,
    observer: &mut O,
) {
    let now = clock.now_ns();
    let (messages, bits) = (metrics.total_messages(), metrics.honest_bits);
    observer.on_event(&RunEvent::RoundEnd {
        round,
        ns: now.saturating_sub(*round_start_ns),
        messages: messages - wire_seen.0,
        bits: bits - wire_seen.1,
        drops,
    });
    *round_start_ns = now;
    *wire_seen = (messages, bits);
}

impl<Q: Protocol> RunOutcome<Q> {
    /// The decision of node `v`, if it is honest and has decided.
    pub fn decision(&self, v: NodeId) -> Option<Q::Decision> {
        self.protocols
            .get(v.index())
            .and_then(Option::as_ref)
            .and_then(Protocol::decision)
    }

    /// The final protocol state of honest node `v`.
    pub fn protocol(&self, v: NodeId) -> Option<&Q> {
        self.protocols.get(v.index()).and_then(Option::as_ref)
    }

    /// The corrupted set of the run.
    pub fn corrupted(&self) -> &NodeSet {
        &self.corrupted
    }

    /// All honest nodes that decided, with their decisions.
    pub fn decided(&self) -> Vec<(NodeId, Q::Decision)> {
        self.protocols
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                p.as_ref()
                    .and_then(Protocol::decision)
                    .map(|d| (NodeId::new(i as u32), d))
            })
            .collect()
    }

    /// The messages delivered to a watched node, as `(round, envelope)`.
    ///
    /// Empty unless the node was passed to [`Runner::watch`].
    pub fn delivered_to(&self, v: NodeId) -> &[(u32, Envelope<Q::Payload>)] {
        self.watched.get(&v).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{MapAdversary, SilentAdversary};
    use crate::testing::Flood;
    use rmt_graph::generators;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn flood_from_zero(v: NodeId) -> Flood {
        Flood::new(v, (v.index() == 0).then_some(7))
    }

    #[test]
    fn flood_reaches_everyone_without_adversary() {
        let g = generators::cycle(6);
        let out = Runner::new(g, flood_from_zero, SilentAdversary::new(NodeSet::new())).run();
        for v in 0..6u32 {
            assert_eq!(out.decision(v.into()), Some(7), "node {v}");
        }
        // Cycle of 6: value reaches the antipode in 3 rounds, one more round
        // of sends, nothing in flight afterwards.
        assert!(out.metrics.rounds <= 5);
        assert_eq!(out.metrics.honest_messages_per_round[0], 2);
    }

    #[test]
    fn silent_cut_blocks_flooding() {
        let g = generators::path_graph(4); // 0-1-2-3, corrupt 1
        let out = Runner::new(g, flood_from_zero, SilentAdversary::new(set(&[1]))).run();
        assert_eq!(out.decision(0.into()), Some(7));
        assert_eq!(out.decision(2.into()), None);
        assert_eq!(out.decision(3.into()), None);
        assert_eq!(out.decision(1.into()), None); // corrupted: no decision
        assert_eq!(out.corrupted(), &set(&[1]));
    }

    #[test]
    fn map_adversary_alters_relayed_value() {
        let g = generators::path_graph(3); // 0-1-2, corrupt 1, flip 7→9
        let adv = MapAdversary::new(set(&[1]), flood_from_zero, |_, mut env| {
            env.payload = 9u64;
            Some(env)
        });
        let out = Runner::new(g, flood_from_zero, adv).run();
        assert_eq!(out.decision(2.into()), Some(9));
        assert!(out.metrics.adversarial_messages > 0);
    }

    #[test]
    fn invalid_adversarial_traffic_is_rejected() {
        let g = generators::path_graph(3);
        let adv = crate::adversary::FnAdversary::<u64, _>::new(set(&[1]), |round, _, _| {
            if round == 0 {
                vec![
                    Envelope::new(0.into(), 1.into(), 5), // forged sender
                    Envelope::new(1.into(), 1.into(), 5), // no self edge
                    Envelope::new(1.into(), 2.into(), 5), // valid
                ]
            } else {
                vec![]
            }
        });
        let out = Runner::new(g, |v| Flood::new(v, None), adv).run();
        assert_eq!(out.metrics.rejected_adversarial, 2);
        assert_eq!(out.metrics.adversarial_messages, 1);
        assert_eq!(out.decision(2.into()), Some(5));
    }

    #[test]
    fn watch_records_deliveries_in_order() {
        let g = generators::path_graph(3);
        let out = Runner::new(g, flood_from_zero, SilentAdversary::new(NodeSet::new()))
            .watch(set(&[2]))
            .run();
        let log = out.delivered_to(2.into());
        assert!(!log.is_empty());
        assert_eq!(log[0].1.payload, 7);
        assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(out.delivered_to(0.into()).is_empty()); // not watched
    }

    #[test]
    fn profiling_emits_one_round_end_per_round_with_exact_wire_deltas() {
        let run = |profiled: bool| {
            let g = generators::cycle(6);
            let mut runner = Runner::new(g, flood_from_zero, SilentAdversary::new(NodeSet::new()));
            if profiled {
                runner = runner.with_profiling(Clock::virtual_ns(10));
            }
            let mut obs = rmt_obs::VecObserver::new();
            let out = runner.run_observed(&mut obs);
            (out, obs.events)
        };

        let (out, events) = run(true);
        let round_ends: Vec<(u64, u64, u64)> = events
            .iter()
            .filter_map(|ev| match ev {
                RunEvent::RoundEnd {
                    messages,
                    bits,
                    drops,
                    ..
                } => Some((*messages, *bits, *drops)),
                _ => None,
            })
            .collect();
        let round_starts = events
            .iter()
            .filter(|ev| matches!(ev, RunEvent::RoundStart { .. }))
            .count();
        assert_eq!(round_ends.len(), round_starts);
        let billed: u64 = round_ends.iter().map(|(m, _, _)| m).sum();
        let billed_bits: u64 = round_ends.iter().map(|(_, b, _)| b).sum();
        assert_eq!(billed, out.metrics.total_messages());
        assert_eq!(billed_bits, out.metrics.honest_bits);
        assert!(round_ends.iter().all(|(_, _, d)| *d == 0));
        // The virtual clock makes latencies deterministic run over run.
        let latencies = |evs: &[RunEvent]| -> Vec<u64> {
            evs.iter()
                .filter_map(|ev| match ev {
                    RunEvent::RoundEnd { ns, .. } => Some(*ns),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(latencies(&events), latencies(&run(true).1));

        // Unprofiled observed runs stay exactly as before: no RoundEnd.
        let (_, plain) = run(false);
        assert!(!plain
            .iter()
            .any(|ev| matches!(ev, RunEvent::RoundEnd { .. })));
        assert_eq!(plain.len(), events.len() - round_ends.len());
    }

    #[test]
    fn max_rounds_bounds_execution() {
        // A protocol that echoes forever on a 2-cycle would never quiesce;
        // flooding does, but verify the bound is respected with a tiny cap.
        let g = generators::cycle(8);
        let out = Runner::new(g, flood_from_zero, SilentAdversary::new(NodeSet::new()))
            .with_max_rounds(1)
            .run();
        assert_eq!(out.metrics.rounds, 1);
        assert_eq!(out.decision(4.into()), None); // too far for one round
    }
}
