//! Observer transparency: instrumenting a run must not change it, and the
//! event stream must carry enough to reconstruct metrics and transcripts.

use proptest::prelude::*;
use rmt_graph::generators;
use rmt_obs::{
    diff_node_views, diff_traces, parse_jsonl, to_jsonl, DropReason, RunEvent, VecObserver,
};
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::trace::debug_describe;
use rmt_sim::{testing::Flood, CoupledRunner, Metrics, Runner, SilentAdversary, Transcript};

fn arb_setup() -> impl Strategy<Value = (usize, f64, u64)> {
    (3usize..12, 0.2f64..0.8, any::<u64>())
}

/// An arbitrary network-fault event, covering every variant `rmt-net`'s
/// scheduler can emit.
fn arb_fault_event() -> impl Strategy<Value = RunEvent> {
    (0u32..4, 0u32..60, 0u32..32, 0u32..32, 0u32..8).prop_map(|(kind, round, from, to, c)| {
        match kind {
            0 => RunEvent::FaultDrop {
                round,
                from,
                to,
                reason: match c % 3 {
                    0 => DropReason::LinkDrop,
                    1 => DropReason::Partitioned,
                    _ => DropReason::SenderCrashed,
                },
            },
            1 => RunEvent::FaultDelay {
                round,
                from,
                to,
                delay: c + 1,
                deliver_round: round + 2 + c,
            },
            2 => RunEvent::FaultDuplicate {
                round,
                from,
                to,
                deliver_round: round + 1 + c,
            },
            _ => RunEvent::NodeCrashed { round, node: from },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The no-op-observer path and the observed path produce byte-identical
    /// metrics and decisions: observation is transparent.
    #[test]
    fn observed_runs_match_unobserved_runs((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let corrupt = NodeSet::singleton(NodeId::new(1));
        let make = |v: NodeId| Flood::new(v, (v.index() == 0).then_some(5));
        let plain = Runner::new(g.clone(), make, SilentAdversary::new(corrupt.clone())).run();
        let mut obs = VecObserver::default();
        let observed = Runner::new(g.clone(), make, SilentAdversary::new(corrupt))
            .run_observed(&mut obs);
        prop_assert_eq!(&plain.metrics, &observed.metrics);
        for v in g.nodes() {
            prop_assert_eq!(plain.decision(v), observed.decision(v));
        }
        prop_assert!(!obs.events.is_empty());
    }

    /// Metrics reconstructed from the event stream equal the metrics the
    /// run computed directly — the stream is a complete account.
    #[test]
    fn metrics_replay_from_events((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let mut obs = VecObserver::default();
        let out = Runner::new(
            g,
            |v| Flood::new(v, (v.index() == 0).then_some(5)),
            SilentAdversary::new(NodeSet::new()),
        )
        .run_observed(&mut obs);
        let replayed = Metrics::from_events(&obs.events);
        prop_assert_eq!(&replayed, &out.metrics);
        // The satellite invariant, end to end: per-round counts sum to the
        // total both in the run's own accounting and in the replay.
        let per_round: u64 = out.metrics.honest_messages_per_round.iter().sum();
        prop_assert_eq!(per_round, out.metrics.honest_messages);
    }

    /// A transcript built from events matches the watch-based transcript.
    #[test]
    fn transcripts_replay_from_events((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let target = NodeId::new((n - 1) as u32);
        let mut obs = VecObserver::default();
        let out = Runner::new(
            g,
            |v| Flood::new(v, (v.index() == 0).then_some(5)),
            SilentAdversary::new(NodeSet::new()),
        )
        .watch(NodeSet::singleton(target))
        .run_observed(&mut obs);
        let watched = Transcript::for_node(&out, target, debug_describe);
        let replayed = Transcript::from_events(&obs.events, target);
        prop_assert_eq!(watched.render(), replayed.render());
    }

    /// Observation transparency extends to the *parallel* instrumented
    /// deciders: for any instance and thread count, the per-worker counter
    /// shards merged into the registry total exactly what the sequential
    /// instrumented decider records — overshoot past the winning candidate
    /// never leaks into the artifact.
    #[test]
    fn parallel_observed_deciders_emit_sequential_counter_totals(
        (n, p, seed) in (5usize..9, 0.3f64..0.6, any::<u64>()),
        threads in 2usize..9,
    ) {
        use rmt_core::cuts::{
            find_rmt_cut_observed, find_rmt_cut_par_observed, zpp_cut_by_fixpoint_observed,
            zpp_cut_by_fixpoint_par_observed,
        };
        let mut rng = generators::seeded(seed);
        let inst = rmt_core::sampling::random_instance(n, p, rmt_graph::ViewKind::AdHoc, 3, 2, &mut rng);
        let (seq, par) = (rmt_obs::Registry::new(), rmt_obs::Registry::new());
        prop_assert_eq!(
            find_rmt_cut_observed(&inst, &seq),
            find_rmt_cut_par_observed(&inst, &par, threads)
        );
        prop_assert_eq!(
            zpp_cut_by_fixpoint_observed(&inst, &seq),
            zpp_cut_by_fixpoint_par_observed(&inst, &par, threads)
        );
        for name in [
            "rmt_cut.candidates_examined",
            "rmt_cut.partition_checks",
            "zpp.corruption_sets_checked",
            "zcpa.sweeps",
            "zcpa.certification_checks",
        ] {
            prop_assert_eq!(seq.counter(name).get(), par.counter(name).get(), "{}", name);
        }
        // Wall-clock histograms disagree on duration but never on shape.
        for name in ["rmt_cut.search_ns", "zpp.decide_ns"] {
            prop_assert_eq!(seq.histogram(name).count(), par.histogram(name).count(), "{}", name);
        }
    }

    /// Recorded events survive a JSONL round trip losslessly, and the
    /// encoding itself is a fixpoint (encode ∘ parse ∘ encode = encode).
    #[test]
    fn event_jsonl_round_trip((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let mut obs = VecObserver::default();
        let _ = Runner::new(
            g,
            |v| Flood::new(v, (v.index() == 0).then_some(5)),
            SilentAdversary::new(NodeSet::singleton(NodeId::new(1))),
        )
        .run_observed(&mut obs);
        let json: Vec<_> = obs.events.iter().map(RunEvent::to_json).collect();
        let text = to_jsonl(&json);
        let parsed = parse_jsonl(&text).expect("own output parses");
        let decoded: Vec<RunEvent> = parsed
            .iter()
            .map(|v| RunEvent::from_json(v).expect("own encoding decodes"))
            .collect();
        prop_assert_eq!(&decoded, &obs.events);
        let reencoded = to_jsonl(&parsed);
        prop_assert_eq!(reencoded, text);
    }

    /// The fault events emitted by `rmt-net`'s scheduler ride the same
    /// codec: arbitrary fault-event streams — interleaved with an ordinary
    /// run's events — survive the JSONL round trip losslessly, and the
    /// encoding stays a fixpoint.
    #[test]
    fn fault_event_jsonl_round_trip(
        faults in proptest::collection::vec(arb_fault_event(), 1..40),
        (n, p, seed) in arb_setup(),
    ) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let mut obs = VecObserver::default();
        let _ = Runner::new(
            g,
            |v| Flood::new(v, (v.index() == 0).then_some(5)),
            SilentAdversary::new(NodeSet::new()),
        )
        .run_observed(&mut obs);
        let mut events = faults;
        events.extend(obs.events);
        let json: Vec<_> = events.iter().map(RunEvent::to_json).collect();
        let text = to_jsonl(&json);
        let parsed = parse_jsonl(&text).expect("own output parses");
        let decoded: Vec<RunEvent> = parsed
            .iter()
            .map(|v| RunEvent::from_json(v).expect("own encoding decodes"))
            .collect();
        prop_assert_eq!(&decoded, &events);
        prop_assert_eq!(to_jsonl(&parsed), text);
    }
}

/// The coupled diamond run: full traces differ (different corrupted sets and
/// component traffic) while the receiver's restricted view diff is empty —
/// Figure 2, checked mechanically on event streams.
#[test]
fn coupled_traces_differ_globally_but_not_at_the_receiver() {
    let mut g = rmt_graph::Graph::new();
    g.add_edge(0.into(), 1.into());
    g.add_edge(0.into(), 2.into());
    g.add_edge(1.into(), 3.into());
    g.add_edge(2.into(), 3.into());
    let set = |ids: &[u32]| ids.iter().copied().collect::<NodeSet>();
    let make_e = |v: NodeId| Flood::new(v, (v.index() == 0).then_some(0));
    let make_e2 = |v: NodeId| Flood::new(v, (v.index() == 0).then_some(1));
    let mut obs_e = VecObserver::default();
    let mut obs_e2 = VecObserver::default();
    let out = CoupledRunner::new(g, set(&[1]), set(&[2]), make_e, make_e2)
        .run_observed(&mut obs_e, &mut obs_e2);
    assert!(out.views_equal(3.into()));
    assert!(
        !diff_traces(&obs_e.events, &obs_e2.events).is_empty(),
        "the two executions are globally different"
    );
    assert!(
        diff_node_views(&obs_e.events, &obs_e2.events, 3).is_empty(),
        "yet the receiver cannot tell them apart"
    );
    // The delivery logs agree with the event-stream views.
    let t_e = Transcript::from_events(&obs_e.events, 3.into());
    let t_e2 = Transcript::from_events(&obs_e2.events, 3.into());
    assert_eq!(t_e.render(), t_e2.render());
    assert!(!t_e.is_empty());
}
