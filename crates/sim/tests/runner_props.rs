//! Property tests on the scheduler's physical model: authenticated
//! channels, edge-only delivery, metric consistency, and determinism.

use proptest::prelude::*;
use rmt_graph::generators;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{testing::Flood, Envelope, FnAdversary, Runner, SilentAdversary};

fn arb_setup() -> impl Strategy<Value = (usize, f64, u64)> {
    (3usize..12, 0.2f64..0.8, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Watched deliveries only ever arrive along edges, from real nodes,
    /// with non-decreasing rounds.
    #[test]
    fn deliveries_respect_the_topology((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let watch_all: NodeSet = g.nodes().clone();
        let out = Runner::new(
            g.clone(),
            |v| Flood::new(v, (v.index() == 0).then_some(5)),
            SilentAdversary::new(NodeSet::new()),
        )
        .watch(watch_all)
        .run();
        for v in g.nodes() {
            let log = out.delivered_to(v);
            prop_assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
            for (_, env) in log {
                prop_assert_eq!(env.to, v);
                prop_assert!(g.has_edge(env.from, env.to));
            }
        }
    }

    /// Per-round message counters sum to the total, and the per-round
    /// vector has one entry per executed round plus the initial sends.
    #[test]
    fn metrics_are_internally_consistent((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let out = Runner::new(
            g,
            |v| Flood::new(v, (v.index() == 0).then_some(5)),
            SilentAdversary::new(NodeSet::new()),
        )
        .run();
        let m = &out.metrics;
        let per_round: u64 = m.honest_messages_per_round.iter().sum();
        prop_assert_eq!(per_round, m.honest_messages);
        prop_assert_eq!(m.honest_messages_per_round.len() as u32, m.rounds + 1);
        prop_assert_eq!(m.honest_bits, m.honest_messages * 64);
        prop_assert_eq!(m.adversarial_messages, 0);
    }

    /// Runs are deterministic: identical inputs produce identical outcomes.
    #[test]
    fn runs_are_deterministic((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let corrupt = NodeSet::singleton(NodeId::new(1));
        let run = || {
            Runner::new(
                g.clone(),
                |v| Flood::new(v, (v.index() == 0).then_some(5)),
                SilentAdversary::new(corrupt.clone()),
            )
            .run()
        };
        let (a, b) = (run(), run());
        for v in g.nodes() {
            prop_assert_eq!(a.decision(v), b.decision(v));
        }
        prop_assert_eq!(&a.metrics, &b.metrics);
    }

    /// Adversarial envelopes violating the model (wrong sender or non-edge)
    /// are always rejected; valid ones always pass.
    #[test]
    fn adversarial_filtering_is_exact((n, p, seed) in arb_setup()) {
        let g = generators::gnp_connected(n, p, &mut generators::seeded(seed));
        let corrupt = NodeSet::singleton(NodeId::new(1));
        let nbrs = g.neighbors(NodeId::new(1)).clone();
        let valid_targets = nbrs.len() as u64;
        let adv = FnAdversary::<u64, _>::new(corrupt, move |round, g2, _| {
            if round != 0 {
                return vec![];
            }
            let mut out = Vec::new();
            // One valid envelope per neighbour…
            for to in g2.neighbors(NodeId::new(1)) {
                out.push(Envelope::new(NodeId::new(1), to, 9u64));
            }
            // …and two invalid ones.
            out.push(Envelope::new(NodeId::new(0), NodeId::new(1), 9)); // forged sender
            out.push(Envelope::new(NodeId::new(1), NodeId::new(1), 9)); // self loop
            out
        });
        let out = Runner::new(g, |v| Flood::new(v, None), adv).run();
        prop_assert_eq!(out.metrics.adversarial_messages, valid_targets);
        prop_assert_eq!(out.metrics.rejected_adversarial, 2);
    }
}
