//! Differential gate for the antichain backends: the trie-compressed
//! [`TrieFamily`] must be observationally identical to the explicit
//! [`ExplicitFamily`] — same growth reports, same membership answers, same
//! canonical antichain — on random insertion scripts, structure builds,
//! binary joins, and full `materialize_bounded` folds. The explicit list is
//! the historical algorithm and serves as ground truth.

use proptest::prelude::*;
use rmt_adversary::{
    AdversaryStructure, ExplicitFamily, FamilyBackend, JointView, MonotoneFamily,
    RestrictedStructure, TrieFamily,
};
use rmt_sets::NodeSet;

const UNIVERSE: u32 = 9;

fn nodeset() -> impl Strategy<Value = NodeSet> {
    proptest::collection::btree_set(0u32..UNIVERSE, 0..=5)
        .prop_map(|s| s.into_iter().collect::<NodeSet>())
}

fn sets(max: usize) -> impl Strategy<Value = Vec<NodeSet>> {
    proptest::collection::vec(nodeset(), 0..max)
}

fn structure() -> impl Strategy<Value = AdversaryStructure> {
    sets(6).prop_map(AdversaryStructure::from_sets)
}

fn restricted() -> impl Strategy<Value = RestrictedStructure> {
    (structure(), nodeset()).prop_map(|(z, d)| RestrictedStructure::restrict(&z, d))
}

proptest! {
    /// Insert scripts: both backends report the same growth at every step
    /// and end with the same sorted antichain.
    #[test]
    fn insert_scripts_agree(script in sets(12)) {
        let mut explicit = ExplicitFamily::new();
        let mut trie = TrieFamily::new();
        for s in &script {
            prop_assert_eq!(
                explicit.insert_maximal(s.clone()),
                trie.insert_maximal(s.clone()),
                "growth report diverged inserting {}", s
            );
            prop_assert_eq!(explicit.maximal_count(), trie.maximal_count());
        }
        prop_assert_eq!(explicit.into_antichain(), trie.into_antichain());
    }

    /// Membership: mid-build, the two backends answer identically on every
    /// subset of the universe.
    #[test]
    fn membership_agrees(script in sets(8)) {
        let mut explicit = ExplicitFamily::new();
        let mut trie = TrieFamily::new();
        for s in &script {
            explicit.insert_maximal(s.clone());
            trie.insert_maximal(s.clone());
        }
        for q in NodeSet::universe(UNIVERSE as usize).subsets() {
            prop_assert_eq!(
                explicit.contains_member(&q),
                trie.contains_member(&q),
                "membership diverged on {}", q
            );
        }
    }

    /// `from_sets_with`: the full structure constructor is backend-invariant
    /// (this is the path every decider's antichains flow through).
    #[test]
    fn from_sets_is_backend_invariant(script in sets(12)) {
        let explicit =
            AdversaryStructure::from_sets_with(FamilyBackend::Explicit, script.iter().cloned());
        let trie = AdversaryStructure::from_sets_with(FamilyBackend::Trie, script.iter().cloned());
        prop_assert_eq!(&explicit, &trie);
        prop_assert!(explicit.invariant_holds());
    }

    /// Binary ⊕: the pair-grid prune is backend-invariant.
    #[test]
    fn join_is_backend_invariant(e in restricted(), f in restricted()) {
        let explicit = e.join_with(&f, FamilyBackend::Explicit);
        let trie = e.join_with(&f, FamilyBackend::Trie);
        prop_assert_eq!(explicit.structure(), trie.structure());
        prop_assert_eq!(explicit.domain(), trie.domain());
    }

    /// `materialize_bounded`: an n-ary fold with every binary ⊕ forced to
    /// one backend matches the other, bound decisions included.
    #[test]
    fn materialize_bounded_is_backend_invariant(
        parts in proptest::collection::vec(restricted(), 0..4),
        bound_exp in 0usize..10,
    ) {
        let fold = |backend: FamilyBackend| -> Option<RestrictedStructure> {
            let mut acc = RestrictedStructure::from_parts(NodeSet::new(), []);
            for p in &parts {
                acc = acc.join_with(p, backend);
                if acc.structure().maximal_sets().len() > (1 << bound_exp) {
                    return None;
                }
            }
            Some(acc)
        };
        let explicit = fold(FamilyBackend::Explicit);
        let trie = fold(FamilyBackend::Trie);
        prop_assert_eq!(
            explicit.as_ref().map(RestrictedStructure::structure),
            trie.as_ref().map(RestrictedStructure::structure)
        );
        // And the adaptive entry point agrees with both.
        let view: JointView = parts.iter().cloned().collect();
        let adaptive = view.materialize_bounded(1 << bound_exp);
        prop_assert_eq!(
            adaptive.as_ref().map(RestrictedStructure::structure),
            explicit.as_ref().map(RestrictedStructure::structure)
        );
    }
}
