//! Property tests for the ⊕ operation: the paper's Theorems 1, 11, 13, 14
//! (semilattice laws, maximality) and Corollary 2, checked against brute
//! force on random structures over small domains.

use proptest::prelude::*;
use rmt_adversary::{AdversaryStructure, JointView, RestrictedStructure};
use rmt_sets::NodeSet;

const UNIVERSE: u32 = 7;

fn nodeset() -> impl Strategy<Value = NodeSet> {
    proptest::collection::btree_set(0u32..UNIVERSE, 0..=4)
        .prop_map(|s| s.into_iter().collect::<NodeSet>())
}

fn structure() -> impl Strategy<Value = AdversaryStructure> {
    proptest::collection::vec(nodeset(), 0..5).prop_map(AdversaryStructure::from_sets)
}

fn restricted() -> impl Strategy<Value = RestrictedStructure> {
    (structure(), nodeset()).prop_map(|(z, d)| RestrictedStructure::restrict(&z, d))
}

/// All subsets of the universe, for exhaustive membership comparison.
fn all_candidates() -> impl Iterator<Item = NodeSet> {
    NodeSet::universe(UNIVERSE as usize).subsets()
}

fn same_family(a: &RestrictedStructure, b: &RestrictedStructure) -> bool {
    all_candidates().all(|z| a.contains(&z) == b.contains(&z))
}

proptest! {
    /// Theorem 11: ⊕ is commutative.
    #[test]
    fn join_is_commutative(e in restricted(), f in restricted()) {
        prop_assert!(same_family(&e.join(&f), &f.join(&e)));
    }

    /// Theorem 13: ⊕ is associative.
    #[test]
    fn join_is_associative(e in restricted(), f in restricted(), h in restricted()) {
        let left = e.join(&f).join(&h);
        let right = e.join(&f.join(&h));
        prop_assert!(same_family(&left, &right));
    }

    /// Theorem 14: ⊕ is idempotent.
    #[test]
    fn join_is_idempotent(e in restricted()) {
        prop_assert!(same_family(&e.join(&e), &e));
    }

    /// Definition 2, brute force: the antichain join realizes exactly
    /// { Z₁ ∪ Z₂ | Z₁ ∈ ℰ^A, Z₂ ∈ ℱ^B, Z₁ ∩ B = Z₂ ∩ A }.
    #[test]
    fn join_matches_definition(e in restricted(), f in restricted()) {
        let joined = e.join(&f);
        let (a, b) = (e.domain().clone(), f.domain().clone());
        let members = |r: &RestrictedStructure| -> Vec<NodeSet> {
            r.domain().subsets().filter(|s| r.contains(s)).collect()
        };
        let mut brute: std::collections::HashSet<NodeSet> = std::collections::HashSet::new();
        for z1 in members(&e) {
            for z2 in members(&f) {
                if z1.intersection(&b) == z2.intersection(&a) {
                    brute.insert(z1.union(&z2));
                }
            }
        }
        for z in all_candidates() {
            prop_assert_eq!(joined.contains(&z), brute.contains(&z), "candidate {}", &z);
        }
    }

    /// Theorem 1 (maximality): any ℋ' over A∪B whose restrictions to A and B
    /// equal ℰ^A and ℱ^B is contained in ℰ^A ⊕ ℱ^B. We generate ℋ' as a
    /// random union of members and test the inclusion when the restriction
    /// conditions hold.
    #[test]
    fn theorem_1_maximality(z in structure(), a in nodeset(), b in nodeset(), h in structure()) {
        let e = RestrictedStructure::restrict(&z, a.clone());
        let f = RestrictedStructure::restrict(&z, b.clone());
        let joined = e.join(&f);
        let hp = RestrictedStructure::restrict(&h, a.union(&b));
        let restriction_matches = {
            let ha = RestrictedStructure::restrict(hp.structure(), a.clone());
            let hb = RestrictedStructure::restrict(hp.structure(), b.clone());
            same_family(&ha, &e) && same_family(&hb, &f)
        };
        if restriction_matches {
            for zc in all_candidates() {
                if hp.contains(&zc) {
                    prop_assert!(joined.contains(&zc), "ℋ' member {} not in join", zc);
                }
            }
        }
    }

    /// Corollary 2: 𝒵^{A∪B} ⊆ 𝒵^A ⊕ 𝒵^B.
    #[test]
    fn corollary_2(z in structure(), a in nodeset(), b in nodeset()) {
        let e = RestrictedStructure::restrict(&z, a.clone());
        let f = RestrictedStructure::restrict(&z, b.clone());
        let joined = e.join(&f);
        let restr = RestrictedStructure::restrict(&z, a.union(&b));
        for zc in all_candidates() {
            if restr.contains(&zc) {
                prop_assert!(joined.contains(&zc));
            }
        }
    }

    /// n-ary generalization used by `JointView`: membership in the fold is
    /// the conjunction of the per-operand trace memberships.
    #[test]
    fn joint_view_equals_fold(z in structure(), doms in proptest::collection::vec(nodeset(), 0..4)) {
        let view: JointView = doms
            .iter()
            .map(|d| RestrictedStructure::restrict(&z, d.clone()))
            .collect();
        let folded = view.materialize();
        for zc in all_candidates() {
            prop_assert_eq!(view.contains(&zc), folded.contains(&zc));
        }
    }

    /// Restriction is sound: Z ∈ 𝒵 implies Z∩A ∈ 𝒵^A, and antichain
    /// invariants survive every operation.
    #[test]
    fn restriction_soundness_and_invariants(z in structure(), a in nodeset(), w in nodeset()) {
        let r = RestrictedStructure::restrict(&z, a.clone());
        if z.contains(&w) {
            prop_assert!(r.contains(&w.intersection(&a)));
        }
        prop_assert!(z.invariant_holds());
        prop_assert!(r.structure().invariant_holds());
    }
}
