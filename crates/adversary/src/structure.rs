use std::collections::HashSet;
use std::fmt;

use rmt_sets::NodeSet;

use crate::family::{FamilyBackend, MonotoneFamily};

/// A monotone family of node sets, represented by the antichain of its
/// maximal sets.
///
/// The family denoted by the structure is
/// `{ Z | Z ⊆ M for some stored maximal set M } ∪ {∅}`
/// — the empty set is always a member (the adversary may corrupt nobody), and
/// the *trivial* structure (empty antichain) denotes the family `{∅}`.
///
/// Invariants maintained by every constructor and operation:
/// * no stored set is a subset of another (antichain);
/// * the empty set is never stored (it is implied);
/// * stored sets are sorted in the canonical [`NodeSet`] order, so equal
///   families compare equal with `==`.
///
/// # Example
///
/// ```
/// use rmt_adversary::AdversaryStructure;
/// use rmt_sets::NodeSet;
///
/// let z = AdversaryStructure::from_sets([
///     [0u32, 1].into_iter().collect::<NodeSet>(),
///     [0u32].into_iter().collect::<NodeSet>(), // pruned: ⊆ {0,1}
///     [2u32].into_iter().collect::<NodeSet>(),
/// ]);
/// assert_eq!(z.maximal_sets().len(), 2);
/// assert!(z.contains(&[1u32].into_iter().collect()));
/// assert!(!z.contains(&[1u32, 2].into_iter().collect()));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct AdversaryStructure {
    /// Sorted antichain of non-empty maximal sets.
    max_sets: Vec<NodeSet>,
}

impl AdversaryStructure {
    /// The trivial structure `{∅}`: no node can ever be corrupted.
    pub fn trivial() -> Self {
        AdversaryStructure::default()
    }

    /// Builds the monotone closure of the given sets, pruning non-maximal
    /// ones.
    ///
    /// The antichain backend (explicit list vs. set-trie) is chosen by
    /// [`FamilyBackend::select`] from the iterator's size hint; the result
    /// is identical either way.
    pub fn from_sets<I: IntoIterator<Item = NodeSet>>(sets: I) -> Self {
        let iter = sets.into_iter();
        let backend = FamilyBackend::select(iter.size_hint().0);
        AdversaryStructure::from_sets_with(backend, iter)
    }

    /// [`AdversaryStructure::from_sets`] with a forced antichain backend.
    ///
    /// The differential suites and the `antichain_ops` bench use this to pin
    /// the explicit and trie-compressed builds against each other; regular
    /// callers should let [`AdversaryStructure::from_sets`] select.
    pub fn from_sets_with<I: IntoIterator<Item = NodeSet>>(
        backend: FamilyBackend,
        sets: I,
    ) -> Self {
        let mut builder = backend.builder();
        for z in sets {
            builder.insert_maximal(z);
        }
        AdversaryStructure {
            max_sets: builder.into_antichain(),
        }
    }

    /// Adds `set` (and implicitly all its subsets) to the family.
    ///
    /// Returns `true` if the family grew (i.e. `set` was not already a
    /// member).
    pub fn add_set(&mut self, set: NodeSet) -> bool {
        if set.is_empty() || self.contains(&set) {
            return false;
        }
        self.max_sets.retain(|m| !m.is_subset(&set));
        let pos = self.max_sets.binary_search(&set).unwrap_err();
        self.max_sets.insert(pos, set);
        true
    }

    /// Returns `true` if `set` is an admissible corruption set.
    pub fn contains(&self, set: &NodeSet) -> bool {
        set.is_empty() || self.max_sets.iter().any(|m| set.is_subset(m))
    }

    /// Returns `true` if the family is `{∅}`.
    pub fn is_trivial(&self) -> bool {
        self.max_sets.is_empty()
    }

    /// The antichain of maximal sets (sorted, without the implied ∅).
    pub fn maximal_sets(&self) -> &[NodeSet] {
        &self.max_sets
    }

    /// Iterates over the maximal sets.
    pub fn iter_maximal(&self) -> impl Iterator<Item = &NodeSet> {
        self.max_sets.iter()
    }

    /// The union of all maximal sets: every node that could possibly be
    /// corrupted.
    pub fn support(&self) -> NodeSet {
        let mut s = NodeSet::new();
        for m in &self.max_sets {
            s.union_with(m);
        }
        s
    }

    /// Union of monotone families: `Z ∈ self ∪ other` iff admissible for
    /// either.
    pub fn union(&self, other: &AdversaryStructure) -> AdversaryStructure {
        AdversaryStructure::from_sets(self.max_sets.iter().chain(&other.max_sets).cloned())
    }

    /// Intersection of monotone families: `Z` admissible for both.
    ///
    /// The maximal sets of the intersection are the maximal elements of the
    /// pairwise intersections of the operands' maximal sets (both families
    /// are downward closed).
    pub fn intersect(&self, other: &AdversaryStructure) -> AdversaryStructure {
        AdversaryStructure::from_sets(
            self.max_sets
                .iter()
                .flat_map(|a| other.max_sets.iter().map(move |b| a.intersection(b))),
        )
    }

    /// The restriction `𝒵^A = { Z ∩ A | Z ∈ 𝒵 }` as a plain structure.
    ///
    /// Because the family is downward closed, intersecting each maximal set
    /// with `A` and re-pruning yields exactly the restriction.
    pub fn restrict_sets(&self, domain: &NodeSet) -> AdversaryStructure {
        AdversaryStructure::from_sets(self.max_sets.iter().map(|m| m.intersection(domain)))
    }

    /// Enumerates every member of the family (the down-closure of the
    /// antichain), up to `limit` members.
    ///
    /// Intended for tests and small exhaustive analyses; the member count is
    /// exponential in general. Returns `None` if the limit was exceeded.
    pub fn enumerate_members(&self, limit: usize) -> Option<Vec<NodeSet>> {
        let mut seen: HashSet<NodeSet> = HashSet::new();
        seen.insert(NodeSet::new());
        for m in &self.max_sets {
            for sub in m.subsets() {
                seen.insert(sub);
                if seen.len() > limit {
                    return None;
                }
            }
        }
        let mut out: Vec<NodeSet> = seen.into_iter().collect();
        out.sort();
        Some(out)
    }

    /// The classical Q^k predicate of Hirt–Maurer: `true` iff **no** `k`
    /// members of the family cover `universe`.
    ///
    /// Q² and Q³ are the feasibility thresholds of general-adversary
    /// multiparty computation and broadcast on complete networks; for the
    /// threshold structure over `n` nodes, Qᵏ holds iff `k·t < n`.
    ///
    /// # Example
    ///
    /// ```
    /// use rmt_sets::NodeSet;
    ///
    /// let u = NodeSet::universe(7);
    /// let z = rmt_adversary::threshold(&u, 2);
    /// assert!(z.is_qk(&u, 2)); // 2·2 < 7
    /// assert!(z.is_qk(&u, 3)); // 3·2 < 7
    /// let z = rmt_adversary::threshold(&u, 3);
    /// assert!(z.is_qk(&u, 2));
    /// assert!(!z.is_qk(&u, 3)); // 3·3 ≥ 7
    /// ```
    pub fn is_qk(&self, universe: &NodeSet, k: usize) -> bool {
        !self.some_k_sets_cover(universe, k, &NodeSet::new())
    }

    fn some_k_sets_cover(&self, universe: &NodeSet, k: usize, covered: &NodeSet) -> bool {
        if universe.is_subset(covered) {
            return true;
        }
        if k == 0 {
            return false;
        }
        // Only maximal sets matter: any member is contained in one.
        self.max_sets
            .iter()
            .any(|m| self.some_k_sets_cover(universe, k - 1, &covered.union(m)))
    }

    /// Checks the internal antichain invariant. Exposed for tests.
    pub fn invariant_holds(&self) -> bool {
        self.max_sets.windows(2).all(|w| w[0] < w[1])
            && self.max_sets.iter().all(|m| !m.is_empty())
            && self.max_sets.iter().enumerate().all(|(i, a)| {
                self.max_sets
                    .iter()
                    .enumerate()
                    .all(|(j, b)| i == j || !a.is_subset(b))
            })
    }
}

impl fmt::Debug for AdversaryStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AdversaryStructure")
            .field(&self.max_sets)
            .finish()
    }
}

impl fmt::Display for AdversaryStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, m) in self.max_sets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<NodeSet> for AdversaryStructure {
    fn from_iter<I: IntoIterator<Item = NodeSet>>(iter: I) -> Self {
        AdversaryStructure::from_sets(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn structure(sets: &[&[u32]]) -> AdversaryStructure {
        AdversaryStructure::from_sets(sets.iter().map(|s| set(s)))
    }

    #[test]
    fn trivial_contains_only_empty() {
        let z = AdversaryStructure::trivial();
        assert!(z.is_trivial());
        assert!(z.contains(&NodeSet::new()));
        assert!(!z.contains(&set(&[0])));
        assert!(z.invariant_holds());
    }

    #[test]
    fn from_sets_prunes_to_antichain() {
        let z = structure(&[&[0, 1], &[0], &[1], &[2], &[0, 1]]);
        assert_eq!(z.maximal_sets(), &[set(&[0, 1]), set(&[2])]);
        assert!(z.invariant_holds());
    }

    #[test]
    fn membership_is_downward_closed() {
        let z = structure(&[&[0, 1, 2]]);
        for sub in set(&[0, 1, 2]).subsets() {
            assert!(z.contains(&sub));
        }
        assert!(!z.contains(&set(&[3])));
        assert!(!z.contains(&set(&[0, 3])));
    }

    #[test]
    fn add_set_reports_growth() {
        let mut z = structure(&[&[0, 1]]);
        assert!(!z.add_set(set(&[0]))); // already a member
        assert!(!z.add_set(NodeSet::new()));
        assert!(z.add_set(set(&[2])));
        assert!(z.add_set(set(&[0, 1, 2]))); // supersedes both
        assert_eq!(z.maximal_sets(), &[set(&[0, 1, 2])]);
    }

    #[test]
    fn union_and_intersection_agree_with_membership() {
        let a = structure(&[&[0, 1], &[2]]);
        let b = structure(&[&[1, 2], &[0]]);
        let u = a.union(&b);
        let i = a.intersect(&b);
        for z in NodeSet::universe(3).subsets() {
            assert_eq!(u.contains(&z), a.contains(&z) || b.contains(&z), "{z}");
            assert_eq!(i.contains(&z), a.contains(&z) && b.contains(&z), "{z}");
        }
        assert!(u.invariant_holds() && i.invariant_holds());
    }

    #[test]
    fn restrict_sets_matches_definition() {
        let z = structure(&[&[0, 1, 3], &[2, 3]]);
        let a = set(&[0, 2, 3]);
        let r = z.restrict_sets(&a);
        // Definitional restriction: {Z ∩ A | Z ∈ 𝒵}; check by membership.
        for x in a.subsets() {
            let expected = z
                .enumerate_members(1 << 12)
                .unwrap()
                .iter()
                .any(|m| m.intersection(&a) == x);
            assert_eq!(r.contains(&x), expected, "{x}");
        }
    }

    #[test]
    fn support_is_union_of_maximal_sets() {
        let z = structure(&[&[0, 1], &[5]]);
        assert_eq!(z.support(), set(&[0, 1, 5]));
        assert!(AdversaryStructure::trivial().support().is_empty());
    }

    #[test]
    fn enumerate_members_counts_down_closure() {
        let z = structure(&[&[0, 1], &[2]]);
        // members: ∅,{0},{1},{0,1},{2} = 5
        assert_eq!(z.enumerate_members(100).unwrap().len(), 5);
        assert_eq!(z.enumerate_members(3), None);
    }

    #[test]
    fn qk_matches_the_threshold_formula() {
        for n in 3..9usize {
            let u = NodeSet::universe(n);
            for t in 0..n {
                let z = crate::threshold(&u, t);
                for k in 1..4usize {
                    assert_eq!(z.is_qk(&u, k), k * t < n, "n={n}, t={t}, k={k}");
                }
            }
        }
    }

    #[test]
    fn qk_on_non_threshold_structures() {
        // {0,1} and {2} cover {0,1,2} with two sets: not Q2 there…
        let z = structure(&[&[0, 1], &[2]]);
        assert!(!z.is_qk(&set(&[0, 1, 2]), 2));
        // …but Q2 over the larger universe {0,1,2,3}.
        assert!(z.is_qk(&set(&[0, 1, 2, 3]), 2));
        // The trivial structure is Qᵏ for any k over any non-empty universe.
        assert!(AdversaryStructure::trivial().is_qk(&set(&[0]), 5));
        assert!(!AdversaryStructure::trivial().is_qk(&NodeSet::new(), 1));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(AdversaryStructure::trivial().to_string(), "⟨⟩");
        let z = structure(&[&[0]]);
        assert_eq!(z.to_string(), "⟨{v0}⟩");
    }

    #[test]
    fn equal_families_compare_equal() {
        let a = structure(&[&[0, 1], &[2]]);
        let b = structure(&[&[2], &[0], &[0, 1]]);
        assert_eq!(a, b);
    }
}
