use std::fmt;

use rmt_sets::NodeSet;

use crate::restricted::RestrictedStructure;

/// A lazy n-ary join ⊕ᵢ ℰᵢ^{Aᵢ} of restricted adversary structures.
///
/// The paper defines the combined knowledge of a node set B as
/// `𝒵_B = ⊕_{v∈B} 𝒵^{V(γ(v))}`. Materializing this antichain can blow up
/// multiplicatively in |B| (we measure this in the `join_op` bench), but the
/// deciders in `rmt-core` only ever need *membership* tests against 𝒵_B.
/// Because ⊕ is associative, the fold satisfies
///
/// > Z ∈ ⊕ᵢ ℰᵢ^{Aᵢ}  ⇔  Z ⊆ ∪ᵢAᵢ  ∧  ∀i: Z ∩ Aᵢ ∈ ℰᵢ^{Aᵢ}
///
/// so a `JointView` answers membership in O(Σ|ℰᵢ|) set operations without
/// ever building the joined antichain. [`JointView::materialize`] folds the
/// exact binary join when the explicit antichain is required.
///
/// An empty `JointView` denotes the neutral element: the trivial structure
/// `{∅}` over the empty domain.
///
/// # Example
///
/// ```
/// use rmt_adversary::{JointView, RestrictedStructure};
/// use rmt_sets::NodeSet;
///
/// let z = rmt_adversary::threshold(&NodeSet::universe(4), 1);
/// let view = |ids: &[u32]| -> NodeSet { ids.iter().copied().collect() };
/// let joint: JointView = [view(&[0, 1]), view(&[1, 2]), view(&[2, 3])]
///     .into_iter()
///     .map(|d| RestrictedStructure::restrict(&z, d))
///     .collect();
/// // Each local trace of {0,2} has ≤ 1 node, so the joint view admits it.
/// assert!(joint.contains(&view(&[0, 2])));
/// assert!(!joint.contains(&view(&[1, 2])));
/// assert_eq!(joint.materialize().domain(), &NodeSet::universe(4));
/// ```
#[derive(Clone, Default)]
pub struct JointView {
    parts: Vec<RestrictedStructure>,
    domain: NodeSet,
}

impl JointView {
    /// Creates the neutral joint view (trivial structure over ∅).
    pub fn new() -> Self {
        JointView::default()
    }

    /// Adds one operand to the join.
    pub fn push(&mut self, part: RestrictedStructure) {
        self.domain.union_with(part.domain());
        self.parts.push(part);
    }

    /// The union of the operands' domains.
    pub fn domain(&self) -> &NodeSet {
        &self.domain
    }

    /// The operands, in insertion order.
    pub fn parts(&self) -> &[RestrictedStructure] {
        &self.parts
    }

    /// Membership test against the n-ary join, without materialization.
    pub fn contains(&self, set: &NodeSet) -> bool {
        set.is_subset(&self.domain)
            && self
                .parts
                .iter()
                .all(|p| p.contains(&set.intersection(p.domain())))
    }

    /// Folds the exact binary ⊕ to obtain the joined restricted structure.
    ///
    /// The result's antichain can be large; prefer [`JointView::contains`]
    /// where only membership is needed, or bound the fold with
    /// [`JointView::materialize_bounded`].
    pub fn materialize(&self) -> RestrictedStructure {
        self.materialize_bounded(usize::MAX)
            .expect("unbounded materialization cannot exceed usize::MAX sets")
    }

    /// Folds the exact binary ⊕, returning `None` if any intermediate
    /// antichain exceeds `max_antichain` maximal sets.
    pub fn materialize_bounded(&self, max_antichain: usize) -> Option<RestrictedStructure> {
        let mut acc = RestrictedStructure::from_parts(NodeSet::new(), []);
        for p in &self.parts {
            acc = acc.join(p);
            if acc.structure().maximal_sets().len() > max_antichain {
                return None;
            }
        }
        Some(acc)
    }

    /// [`JointView::materialize_bounded`] with each binary ⊕'s pairwise
    /// cross-product computed on up to `threads` OS threads.
    ///
    /// The *fold sequence* stays sequential and left-to-right — only the
    /// inner cross-product of each [`RestrictedStructure::join_par`] fans
    /// out — so every intermediate antichain, and therefore the
    /// `Some`/`None` bound decision, is **bit-identical** to
    /// [`JointView::materialize_bounded`] for any thread count.
    pub fn materialize_bounded_par(
        &self,
        max_antichain: usize,
        threads: usize,
    ) -> Option<RestrictedStructure> {
        let mut acc = RestrictedStructure::from_parts(NodeSet::new(), []);
        for p in &self.parts {
            acc = acc.join_par(p, threads);
            if acc.structure().maximal_sets().len() > max_antichain {
                return None;
            }
        }
        Some(acc)
    }

    /// [`JointView::materialize_bounded_par`] with the fold effort recorded
    /// in `reg`, under the same metric names as
    /// [`JointView::materialize_bounded_observed`] (`join.folds`,
    /// `join.antichain_size`, `join.fold_ns`, `family.*`). The counter
    /// values are deterministic across thread counts because the fold
    /// sequence is — and because the antichain backend is a pure function of
    /// the candidate count.
    pub fn materialize_bounded_par_observed(
        &self,
        max_antichain: usize,
        threads: usize,
        reg: &rmt_obs::Registry,
    ) -> Option<RestrictedStructure> {
        let _timer = reg.timer("join.fold_ns");
        let folds = reg.counter("join.folds");
        let sizes = reg.histogram("join.antichain_size");
        let family = FamilyCounters::new(reg);
        let mut acc = RestrictedStructure::from_parts(NodeSet::new(), []);
        for p in &self.parts {
            family.observe(&acc, p);
            acc = acc.join_par(p, threads);
            folds.inc();
            let len = acc.structure().maximal_sets().len();
            family.kept.add(len as u64);
            sizes.record(len as u64);
            if len > max_antichain {
                return None;
            }
        }
        Some(acc)
    }

    /// [`JointView::materialize_bounded`] with the fold effort recorded in
    /// `reg`:
    ///
    /// * `join.folds` — binary ⊕ applications;
    /// * `join.antichain_size` — size of each intermediate antichain
    ///   (histogram; its `max` is the peak blow-up of the fold);
    /// * `join.fold_ns` — wall time of the whole fold (histogram);
    /// * `family.joins_explicit` / `family.joins_trie` — which antichain
    ///   backend each binary ⊕ selected;
    /// * `family.candidate_sets` / `family.kept_sets` — pair-grid candidates
    ///   fed to the backends vs. maximal sets surviving subsumption.
    pub fn materialize_bounded_observed(
        &self,
        max_antichain: usize,
        reg: &rmt_obs::Registry,
    ) -> Option<RestrictedStructure> {
        let _timer = reg.timer("join.fold_ns");
        let folds = reg.counter("join.folds");
        let sizes = reg.histogram("join.antichain_size");
        let family = FamilyCounters::new(reg);
        let mut acc = RestrictedStructure::from_parts(NodeSet::new(), []);
        for p in &self.parts {
            family.observe(&acc, p);
            acc = acc.join(p);
            folds.inc();
            let len = acc.structure().maximal_sets().len();
            family.kept.add(len as u64);
            sizes.record(len as u64);
            if len > max_antichain {
                return None;
            }
        }
        Some(acc)
    }
}

/// The `family.*` counter bundle recorded by observed materializations.
struct FamilyCounters {
    joins_explicit: rmt_obs::Counter,
    joins_trie: rmt_obs::Counter,
    candidates: rmt_obs::Counter,
    kept: rmt_obs::Counter,
}

impl FamilyCounters {
    fn new(reg: &rmt_obs::Registry) -> Self {
        FamilyCounters {
            joins_explicit: reg.counter("family.joins_explicit"),
            joins_trie: reg.counter("family.joins_trie"),
            candidates: reg.counter("family.candidate_sets"),
            kept: reg.counter("family.kept_sets"),
        }
    }

    /// Records the backend selection and candidate count of the upcoming
    /// `acc ⊕ p`, before the join runs (the choice is a pure function of
    /// the operand sizes, so this matches what the join does).
    fn observe(&self, acc: &RestrictedStructure, p: &RestrictedStructure) {
        let candidates = acc.join_candidates(p);
        match crate::family::FamilyBackend::select(candidates) {
            crate::family::FamilyBackend::Explicit => self.joins_explicit.inc(),
            crate::family::FamilyBackend::Trie => self.joins_trie.inc(),
        }
        self.candidates.add(candidates as u64);
    }
}

impl fmt::Debug for JointView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JointView")
            .field("domain", &self.domain)
            .field("parts", &self.parts.len())
            .finish()
    }
}

impl FromIterator<RestrictedStructure> for JointView {
    fn from_iter<I: IntoIterator<Item = RestrictedStructure>>(iter: I) -> Self {
        let mut v = JointView::new();
        for p in iter {
            v.push(p);
        }
        v
    }
}

impl Extend<RestrictedStructure> for JointView {
    fn extend<I: IntoIterator<Item = RestrictedStructure>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::AdversaryStructure;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn structure(sets: &[&[u32]]) -> AdversaryStructure {
        AdversaryStructure::from_sets(sets.iter().map(|s| set(s)))
    }

    #[test]
    fn empty_view_is_neutral() {
        let v = JointView::new();
        assert!(v.contains(&NodeSet::new()));
        assert!(!v.contains(&set(&[0])));
        let m = v.materialize();
        assert!(m.domain().is_empty());
        assert!(m.structure().is_trivial());
    }

    #[test]
    fn lazy_membership_equals_materialized_membership() {
        let z = structure(&[&[0, 1, 4], &[2, 3], &[1, 2]]);
        let domains = [set(&[0, 1, 2]), set(&[1, 2, 3]), set(&[3, 4])];
        let v: JointView = domains
            .iter()
            .map(|d| RestrictedStructure::restrict(&z, d.clone()))
            .collect();
        let m = v.materialize();
        for cand in set(&[0, 1, 2, 3, 4]).subsets() {
            assert_eq!(v.contains(&cand), m.contains(&cand), "{cand}");
        }
    }

    #[test]
    fn fold_order_does_not_matter() {
        let z = structure(&[&[0, 2], &[1, 3]]);
        let domains = [set(&[0, 1]), set(&[1, 2]), set(&[2, 3])];
        let forward: JointView = domains
            .iter()
            .map(|d| RestrictedStructure::restrict(&z, d.clone()))
            .collect();
        let backward: JointView = domains
            .iter()
            .rev()
            .map(|d| RestrictedStructure::restrict(&z, d.clone()))
            .collect();
        assert_eq!(
            forward.materialize().structure(),
            backward.materialize().structure()
        );
    }

    #[test]
    fn corollary_2_restriction_is_contained_in_join() {
        // 𝒵^{A∪B} ⊆ 𝒵^A ⊕ 𝒵^B for every structure and domains.
        let z = structure(&[&[0, 1, 2], &[3, 4], &[1, 4]]);
        let a = set(&[0, 1, 3]);
        let b = set(&[1, 2, 4]);
        let v: JointView = [a.clone(), b.clone()]
            .into_iter()
            .map(|d| RestrictedStructure::restrict(&z, d))
            .collect();
        let restriction = RestrictedStructure::restrict(&z, a.union(&b));
        for cand in a.union(&b).subsets() {
            if restriction.contains(&cand) {
                assert!(v.contains(&cand), "{cand} lost by ⊕");
            }
        }
    }

    #[test]
    fn materialize_bounded_enforces_limit() {
        let z = structure(&[&[0, 1], &[2, 3], &[0, 3], &[1, 2]]);
        let v: JointView = [set(&[0, 1, 2]), set(&[1, 2, 3]), set(&[0, 2, 3])]
            .into_iter()
            .map(|d| RestrictedStructure::restrict(&z, d))
            .collect();
        assert!(v.materialize_bounded(1).is_none());
        assert!(v.materialize_bounded(1 << 16).is_some());
    }

    #[test]
    fn parallel_fold_is_bit_identical_to_sequential() {
        let z = structure(&[&[0, 1], &[2, 3], &[0, 3], &[1, 2], &[1, 4], &[0, 4]]);
        let v: JointView = [
            set(&[0, 1, 2]),
            set(&[1, 2, 3]),
            set(&[0, 2, 3]),
            set(&[2, 3, 4]),
        ]
        .into_iter()
        .map(|d| RestrictedStructure::restrict(&z, d))
        .collect();
        let seq = v.materialize_bounded(1 << 16);
        for threads in [1, 2, 8] {
            let par = v.materialize_bounded_par(1 << 16, threads);
            assert_eq!(
                seq.as_ref().map(RestrictedStructure::structure),
                par.as_ref().map(RestrictedStructure::structure),
                "threads={threads}"
            );
            assert_eq!(
                seq.as_ref().map(RestrictedStructure::domain),
                par.as_ref().map(RestrictedStructure::domain),
            );
            // Bound behaviour matches too, including the None cases.
            for bound in [0, 1, 2, 4, 37] {
                assert_eq!(
                    v.materialize_bounded(bound).is_some(),
                    v.materialize_bounded_par(bound, threads).is_some(),
                    "threads={threads}, bound={bound}"
                );
            }
        }
    }

    #[test]
    fn parallel_observed_fold_records_the_same_counters() {
        let z = structure(&[&[0, 1], &[2, 3], &[0, 3], &[1, 2]]);
        let v: JointView = [set(&[0, 1, 2]), set(&[1, 2, 3]), set(&[0, 2, 3])]
            .into_iter()
            .map(|d| RestrictedStructure::restrict(&z, d))
            .collect();
        let reg_seq = rmt_obs::Registry::new();
        let reg_par = rmt_obs::Registry::new();
        let seq = v.materialize_bounded_observed(1 << 16, &reg_seq).unwrap();
        let par = v
            .materialize_bounded_par_observed(1 << 16, 4, &reg_par)
            .unwrap();
        assert_eq!(seq.structure(), par.structure());
        assert_eq!(
            reg_seq.counter("join.folds").get(),
            reg_par.counter("join.folds").get()
        );
        let (hs, hp) = (
            reg_seq.histogram("join.antichain_size"),
            reg_par.histogram("join.antichain_size"),
        );
        assert_eq!(hs.count(), hp.count());
        assert_eq!(hs.sum(), hp.sum());
        assert_eq!(hs.max(), hp.max());
    }

    #[test]
    fn observed_fold_matches_and_records_antichain_sizes() {
        let z = structure(&[&[0, 1], &[2, 3], &[0, 3], &[1, 2]]);
        let v: JointView = [set(&[0, 1, 2]), set(&[1, 2, 3]), set(&[0, 2, 3])]
            .into_iter()
            .map(|d| RestrictedStructure::restrict(&z, d))
            .collect();
        let reg = rmt_obs::Registry::new();
        let plain = v.materialize_bounded(1 << 16).unwrap();
        let observed = v.materialize_bounded_observed(1 << 16, &reg).unwrap();
        assert_eq!(plain.structure(), observed.structure());
        assert_eq!(reg.counter("join.folds").get(), 3);
        let sizes = reg.histogram("join.antichain_size");
        assert_eq!(sizes.count(), 3);
        assert!(sizes.max() >= plain.structure().maximal_sets().len() as u64);
        // A bounded-out fold still records the folds it performed.
        assert!(v.materialize_bounded_observed(1, &reg).is_none());
        assert!(reg.counter("join.folds").get() > 3);
    }
}
