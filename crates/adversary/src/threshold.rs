use rmt_sets::NodeSet;

use crate::structure::AdversaryStructure;

/// The global threshold structure: all sets of at most `t` nodes from
/// `universe`.
///
/// This is the classical Byzantine model of Lamport–Shostak–Pease as a
/// special case of the general adversary model: the antichain consists of the
/// `C(|universe|, t)` sets of size exactly `t` (or the whole universe when
/// `t ≥ |universe|`).
///
/// # Example
///
/// ```
/// use rmt_sets::NodeSet;
///
/// let z = rmt_adversary::threshold(&NodeSet::universe(4), 2);
/// assert_eq!(z.maximal_sets().len(), 6); // C(4,2)
/// assert!(z.contains(&[0u32, 3].into_iter().collect()));
/// assert!(!z.contains(&[0u32, 1, 2].into_iter().collect()));
/// ```
pub fn threshold(universe: &NodeSet, t: usize) -> AdversaryStructure {
    if t == 0 {
        return AdversaryStructure::trivial();
    }
    if t >= universe.len() {
        return AdversaryStructure::from_sets([universe.clone()]);
    }
    AdversaryStructure::from_sets(universe.combinations(t))
}

/// The trace of the `t`-locally-bounded structure on one neighbourhood:
/// all sets of at most `t` nodes from `neighbourhood`.
///
/// In Koo's t-locally bounded model the adversary may corrupt at most `t`
/// nodes in the neighbourhood of *every* node; what a node `v` can see of
/// that structure is exactly `threshold(𝒩(v), t)`. The Certified Propagation
/// Algorithm's classical `t+1`-equal-neighbours rule is Z-CPA's rule
/// `N ∉ 𝒵_v` instantiated with this trace (tested in `rmt-core`).
pub fn local_threshold_trace(neighbourhood: &NodeSet, t: usize) -> AdversaryStructure {
    threshold(neighbourhood, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threshold_is_trivial() {
        assert!(threshold(&NodeSet::universe(5), 0).is_trivial());
    }

    #[test]
    fn saturating_threshold_is_whole_universe() {
        let u = NodeSet::universe(3);
        let z = threshold(&u, 5);
        assert_eq!(z.maximal_sets(), std::slice::from_ref(&u));
        assert!(z.contains(&u));
    }

    #[test]
    fn membership_is_cardinality_bound() {
        let u = NodeSet::universe(6);
        let z = threshold(&u, 2);
        for s in u.subsets() {
            assert_eq!(z.contains(&s), s.len() <= 2, "{s}");
        }
        assert!(z.invariant_holds());
    }

    #[test]
    fn local_trace_over_sparse_neighbourhood() {
        let nbhd: NodeSet = [3u32, 7, 9].into_iter().collect();
        let z = local_threshold_trace(&nbhd, 1);
        assert!(z.contains(&[7u32].into_iter().collect()));
        assert!(!z.contains(&[3u32, 9].into_iter().collect()));
        assert!(!z.contains(&[0u32].into_iter().collect()));
    }
}
