//! General adversary structures and the joint-view (⊕) operation.
//!
//! In the general adversary model of Hirt and Maurer, the adversary may
//! corrupt any set of players belonging to a *monotone* family 𝒵 ⊆ 2^V (the
//! **adversary structure**): if Z ∈ 𝒵 then every subset of Z is in 𝒵. This
//! crate provides:
//!
//! * [`AdversaryStructure`] — a monotone family represented by the antichain
//!   of its **maximal** sets, with membership, union, intersection and
//!   monotone-closure operations;
//! * [`RestrictedStructure`] — a structure together with the *domain* it has
//!   been restricted to (the paper's ℰ^A = {Z ∩ A | Z ∈ ℰ}), the inputs and
//!   outputs of the ⊕ operation;
//! * [`RestrictedStructure::join`] — the paper's ⊕ operation (Definition 2),
//!   computed **exactly** on antichains;
//! * [`JointView`] — a lazy n-ary join ⊕ᵢ ℰᵢ^{Aᵢ} supporting O(k) membership
//!   tests without materializing the (potentially huge) joined antichain;
//! * [`threshold`] / [`local_threshold_trace`] — builders for the classical
//!   threshold adversary models as special cases.
//!
//! # The ⊕ operation
//!
//! Definition 2 of the paper:
//!
//! > ℰ^A ⊕ ℱ^B = { Z₁ ∪ Z₂ | Z₁ ∈ ℰ^A, Z₂ ∈ ℱ^B, Z₁ ∩ B = Z₂ ∩ A }
//!
//! We use the equivalent *cylinder* characterization (see
//! [`RestrictedStructure::join`] for the proof sketch, and the crate's
//! property tests for machine-checked evidence):
//!
//! > Z ∈ ℰ^A ⊕ ℱ^B  ⇔  Z ⊆ A∪B  ∧  Z∩A ∈ ℰ^A  ∧  Z∩B ∈ ℱ^B
//!
//! which yields an exact O(|ℰ|·|ℱ|) antichain algorithm and, for n-ary joins,
//! a membership test that needs no materialization at all.
//!
//! # Example
//!
//! ```
//! use rmt_adversary::RestrictedStructure;
//! use rmt_sets::NodeSet;
//!
//! // 𝒵 = sets of at most one of {0,1,2}.
//! let z = rmt_adversary::threshold(&NodeSet::universe(3), 1);
//! let a: NodeSet = [0u32, 1].into_iter().collect();
//! let b: NodeSet = [1u32, 2].into_iter().collect();
//! let za = RestrictedStructure::restrict(&z, a);
//! let zb = RestrictedStructure::restrict(&z, b);
//! let joint = za.join(&zb);
//! // {0,2} is admissible for the joint view (each trace has ≤ 1 node) even
//! // though it is not in 𝒵 — exactly the information loss Corollary 2 bounds.
//! let z02: NodeSet = [0u32, 2].into_iter().collect();
//! assert!(joint.contains(&z02));
//! assert!(!z.contains(&z02));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod family;
mod join;
mod restricted;
mod structure;
mod threshold;

pub use family::{
    ExplicitFamily, FamilyBackend, FamilyBuilder, MonotoneFamily, TrieFamily, TRIE_SELECT_THRESHOLD,
};
pub use join::JointView;
pub use restricted::RestrictedStructure;
pub use structure::AdversaryStructure;
pub use threshold::{local_threshold_trace, threshold};
