use std::fmt;

use rmt_sets::NodeSet;

use crate::family::FamilyBackend;
use crate::structure::AdversaryStructure;

/// An adversary structure together with the domain it is restricted to:
/// the paper's ℰ^A = { Z ∩ A | Z ∈ ℰ }.
///
/// Restricted structures are the operands and results of the ⊕ operation
/// ([`RestrictedStructure::join`]); tracking the domain explicitly is what
/// makes ⊕ well defined when different players contribute knowledge over
/// different node sets.
///
/// Invariant: every stored maximal set is a subset of the domain.
///
/// # Example
///
/// ```
/// use rmt_adversary::{AdversaryStructure, RestrictedStructure};
/// use rmt_sets::NodeSet;
///
/// let z = AdversaryStructure::from_sets([[0u32, 1, 2].into_iter().collect::<NodeSet>()]);
/// let a: NodeSet = [1u32, 2, 3].into_iter().collect();
/// let za = RestrictedStructure::restrict(&z, a.clone());
/// assert_eq!(za.domain(), &a);
/// assert!(za.contains(&[1u32, 2].into_iter().collect()));
/// assert!(!za.contains(&[3u32].into_iter().collect())); // 3 ∉ any Z ∩ A
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RestrictedStructure {
    domain: NodeSet,
    structure: AdversaryStructure,
}

impl RestrictedStructure {
    /// Restricts `structure` to `domain`, computing `structure^domain`.
    pub fn restrict(structure: &AdversaryStructure, domain: NodeSet) -> Self {
        RestrictedStructure {
            structure: structure.restrict_sets(&domain),
            domain,
        }
    }

    /// Builds a restricted structure directly from maximal-set candidates,
    /// all of which must lie inside `domain`.
    ///
    /// # Panics
    ///
    /// Panics if any candidate set contains a node outside `domain`.
    pub fn from_parts<I: IntoIterator<Item = NodeSet>>(domain: NodeSet, sets: I) -> Self {
        let structure = AdversaryStructure::from_sets(sets);
        for m in structure.maximal_sets() {
            assert!(
                m.is_subset(&domain),
                "maximal set {m} escapes the domain {domain}"
            );
        }
        RestrictedStructure { domain, structure }
    }

    /// The domain `A` of this ℰ^A.
    pub fn domain(&self) -> &NodeSet {
        &self.domain
    }

    /// The underlying monotone family (over the domain).
    pub fn structure(&self) -> &AdversaryStructure {
        &self.structure
    }

    /// Returns `true` if `set` is a member of ℰ^A.
    ///
    /// Members are by definition subsets of the domain.
    pub fn contains(&self, set: &NodeSet) -> bool {
        set.is_subset(&self.domain) && self.structure.contains(set)
    }

    /// The ⊕ operation of Definition 2, computed exactly on antichains.
    ///
    /// ## Why this is exact
    ///
    /// Membership in the join has the *cylinder* characterization
    ///
    /// > Z ∈ ℰ^A ⊕ ℱ^B ⇔ Z ⊆ A∪B ∧ Z∩A ∈ ℰ^A ∧ Z∩B ∈ ℱ^B.
    ///
    /// (⇐: take Z₁ = Z∩A, Z₂ = Z∩B; then Z₁∩B = Z∩A∩B = Z₂∩A and Z₁∪Z₂ = Z.
    /// ⇒: if Z = Z₁∪Z₂ with the agreement condition, then Z∩A =
    /// Z₁ ∪ (Z₂∩A) = Z₁ ∪ (Z₁∩B) = Z₁ ∈ ℰ^A, symmetrically for B.)
    ///
    /// Hence the join is the intersection of two downward-closed cylinders
    /// whose maximal sets are `Eᵢ ∪ (B∖A)` and `Fⱼ ∪ (A∖B)`, and the maximal
    /// sets of an intersection of monotone families are the maximal elements
    /// of the pairwise intersections.
    ///
    /// The antichain of the result can be as large as |ℰ|·|ℱ|; for n-ary
    /// joins where only membership is needed, prefer [`JointView`].
    ///
    /// [`JointView`]: crate::JointView
    pub fn join(&self, other: &RestrictedStructure) -> RestrictedStructure {
        self.join_with(other, FamilyBackend::select(self.join_candidates(other)))
    }

    /// [`RestrictedStructure::join`] with a forced antichain backend, for
    /// the differential suites and benches; regular callers should let
    /// [`RestrictedStructure::join`] select per pair-grid size.
    pub fn join_with(
        &self,
        other: &RestrictedStructure,
        backend: FamilyBackend,
    ) -> RestrictedStructure {
        let (left, right, domain) = self.cylinder_sets(other);
        let structure = AdversaryStructure::from_sets_with(
            backend,
            left.iter()
                .flat_map(|l| right.iter().map(move |r| l.intersection(r))),
        );
        RestrictedStructure { domain, structure }
    }

    /// The number of candidate sets a `self ⊕ other` materialization prunes:
    /// the size of the cylinder pair grid (trivial structures contribute one
    /// cylinder set). This is the quantity [`FamilyBackend::select`] keys on,
    /// exposed so observed joins can record the choice deterministically.
    pub fn join_candidates(&self, other: &RestrictedStructure) -> usize {
        let left = if self.structure.is_trivial() {
            1
        } else {
            self.structure.maximal_sets().len()
        };
        let right = if other.structure.is_trivial() {
            1
        } else {
            other.structure.maximal_sets().len()
        };
        left * right
    }

    /// [`RestrictedStructure::join`] with the pairwise-intersection
    /// cross-product computed on up to `threads` OS threads.
    ///
    /// The result is **bit-identical** to the sequential join for any thread
    /// count: each worker prunes its contiguous slice of the `|ℰ|·|ℱ|` pair
    /// grid to a partial antichain, and re-pruning the union of partial
    /// antichains yields the same monotone family — whose canonical (sorted)
    /// antichain representation does not depend on insertion order.
    pub fn join_par(&self, other: &RestrictedStructure, threads: usize) -> RestrictedStructure {
        let (left, right, domain) = self.cylinder_sets(other);
        let pairs = left.len() * right.len();
        // Below this the pair grid is too small for threading to pay for
        // itself; the sequential path is bit-identical anyway.
        const MIN_PAIRS_PER_WORKER: usize = 64;
        let workers = rmt_par::effective_threads(threads, pairs / MIN_PAIRS_PER_WORKER);
        let backend = FamilyBackend::select(pairs);
        if workers <= 1 {
            let structure = AdversaryStructure::from_sets_with(
                backend,
                left.iter()
                    .flat_map(|l| right.iter().map(move |r| l.intersection(r))),
            );
            return RestrictedStructure { domain, structure };
        }
        let ranges: Vec<std::ops::Range<usize>> = (0..workers)
            .map(|w| (w * pairs / workers)..((w + 1) * pairs / workers))
            .collect();
        let partials = rmt_par::parallel_map(ranges, workers, |range| {
            AdversaryStructure::from_sets_with(
                backend,
                range.map(|p| {
                    let l = &left[p / right.len()];
                    let r = &right[p % right.len()];
                    l.intersection(r)
                }),
            )
        });
        let merged: usize = partials.iter().map(|p| p.maximal_sets().len()).sum();
        let structure = AdversaryStructure::from_sets_with(
            FamilyBackend::select(merged),
            partials
                .iter()
                .flat_map(|p| p.maximal_sets().iter().cloned()),
        );
        RestrictedStructure { domain, structure }
    }

    /// The maximal sets of the two cylinders whose intersection is
    /// `self ⊕ other`, plus the joined domain (see [`RestrictedStructure::join`]).
    fn cylinder_sets(&self, other: &RestrictedStructure) -> (Vec<NodeSet>, Vec<NodeSet>, NodeSet) {
        let a = &self.domain;
        let b = &other.domain;
        let domain = a.union(b);
        let b_minus_a = b.difference(a);
        let a_minus_b = a.difference(b);

        // Cylinder maximal sets. The trivial structure {∅} has the single
        // implied maximal set ∅, whose cylinder extension is B∖A (resp. A∖B).
        let left: Vec<NodeSet> = if self.structure.is_trivial() {
            vec![b_minus_a.clone()]
        } else {
            self.structure
                .maximal_sets()
                .iter()
                .map(|e| e.union(&b_minus_a))
                .collect()
        };
        let right: Vec<NodeSet> = if other.structure.is_trivial() {
            vec![a_minus_b.clone()]
        } else {
            other
                .structure
                .maximal_sets()
                .iter()
                .map(|f| f.union(&a_minus_b))
                .collect()
        };
        (left, right, domain)
    }

    /// Membership test for the join `self ⊕ other` **without** materializing
    /// it, using the cylinder characterization.
    pub fn join_contains(&self, other: &RestrictedStructure, set: &NodeSet) -> bool {
        set.is_subset(&self.domain.union(&other.domain))
            && self.contains(&set.intersection(&self.domain))
            && other.contains(&set.intersection(&other.domain))
    }
}

impl fmt::Debug for RestrictedStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RestrictedStructure")
            .field("domain", &self.domain)
            .field("structure", &self.structure)
            .finish()
    }
}

impl fmt::Display for RestrictedStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}^{}", self.structure, self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn structure(sets: &[&[u32]]) -> AdversaryStructure {
        AdversaryStructure::from_sets(sets.iter().map(|s| set(s)))
    }

    #[test]
    fn restrict_clips_to_domain() {
        let z = structure(&[&[0, 1, 2], &[3]]);
        let r = RestrictedStructure::restrict(&z, set(&[1, 2, 3]));
        assert!(r.contains(&set(&[1, 2])));
        assert!(r.contains(&set(&[3])));
        assert!(!r.contains(&set(&[1, 3]))); // no Z ∈ 𝒵 traces to {1,3}
        assert!(!r.contains(&set(&[0]))); // outside the domain
    }

    #[test]
    fn from_parts_rejects_escaping_sets() {
        let ok = RestrictedStructure::from_parts(set(&[0, 1]), [set(&[0])]);
        assert!(ok.contains(&set(&[0])));
        let escape =
            std::panic::catch_unwind(|| RestrictedStructure::from_parts(set(&[0, 1]), [set(&[2])]));
        assert!(escape.is_err());
    }

    /// Brute-force ⊕ straight from Definition 2, for cross-checking.
    fn brute_join(e: &RestrictedStructure, f: &RestrictedStructure) -> Vec<NodeSet> {
        let mem = |r: &RestrictedStructure| -> Vec<NodeSet> {
            r.domain().subsets().filter(|z| r.contains(z)).collect()
        };
        let (a, b) = (e.domain(), f.domain());
        let mut out: Vec<NodeSet> = Vec::new();
        for z1 in mem(e) {
            for z2 in mem(f) {
                if z1.intersection(b) == z2.intersection(a) {
                    let u = z1.union(&z2);
                    if !out.contains(&u) {
                        out.push(u);
                    }
                }
            }
        }
        out.sort();
        out
    }

    fn members(r: &RestrictedStructure) -> Vec<NodeSet> {
        let mut v: Vec<NodeSet> = r.domain().subsets().filter(|z| r.contains(z)).collect();
        v.sort();
        v
    }

    #[test]
    fn join_matches_definition_2_brute_force() {
        let z = structure(&[&[0, 1, 3], &[2, 4], &[1, 2]]);
        let a = set(&[0, 1, 2]);
        let b = set(&[1, 2, 3, 4]);
        let e = RestrictedStructure::restrict(&z, a);
        let f = RestrictedStructure::restrict(&z, b);
        let joined = e.join(&f);
        assert_eq!(members(&joined), brute_join(&e, &f));
        assert!(joined.structure().invariant_holds());
    }

    #[test]
    fn join_on_disjoint_domains_is_cartesian() {
        let e = RestrictedStructure::from_parts(set(&[0, 1]), [set(&[0])]);
        let f = RestrictedStructure::from_parts(set(&[2, 3]), [set(&[2, 3])]);
        let j = e.join(&f);
        assert!(j.contains(&set(&[0, 2, 3])));
        assert!(!j.contains(&set(&[1])));
        assert_eq!(j.domain(), &set(&[0, 1, 2, 3]));
    }

    #[test]
    fn join_with_trivial_structure_adds_nothing_inside_overlap() {
        // ℰ = {∅} over {0,1}: nobody in {0,1} can be corrupted according to ℰ.
        let e = RestrictedStructure::from_parts(set(&[0, 1]), []);
        let f = RestrictedStructure::from_parts(set(&[1, 2]), [set(&[1, 2])]);
        let j = e.join(&f);
        // {1} ⊆ A must be in ℰ^A for any member touching 1 — it is not.
        assert!(!j.contains(&set(&[1])));
        assert!(j.contains(&set(&[2])));
        assert!(j.contains(&NodeSet::new()));
    }

    #[test]
    fn join_contains_agrees_with_materialized_join() {
        let z = structure(&[&[0, 2], &[1, 3], &[2, 3, 4]]);
        let e = RestrictedStructure::restrict(&z, set(&[0, 1, 2]));
        let f = RestrictedStructure::restrict(&z, set(&[2, 3, 4]));
        let j = e.join(&f);
        for cand in set(&[0, 1, 2, 3, 4]).subsets() {
            assert_eq!(j.contains(&cand), e.join_contains(&f, &cand), "{cand}");
        }
    }

    #[test]
    fn display_shows_domain() {
        let e = RestrictedStructure::from_parts(set(&[0]), [set(&[0])]);
        assert_eq!(e.to_string(), "⟨{v0}⟩^{v0}");
    }
}
