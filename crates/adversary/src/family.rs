//! Pluggable antichain backends for building monotone families.
//!
//! [`AdversaryStructure`] keeps its canonical representation — a sorted
//! `Vec<NodeSet>` antichain — because every decider iterates
//! `maximal_sets()` and the canonical form is what makes structural equality
//! and the determinism gates work. What *differs* per workload is how the
//! antichain is **built**: pruning a stream of candidate sets (restrictions,
//! unions, the `|ℰ|·|ℱ|` pair grid of a binary ⊕) costs a subsumption check
//! per candidate, and past a few hundred sets the explicit linear scan is
//! the dominant cost of `JointView::materialize_bounded*` and of
//! constructing large threshold structures.
//!
//! [`MonotoneFamily`] abstracts that build step. [`ExplicitFamily`] is the
//! historical sorted-list algorithm, bit-for-bit; [`TrieFamily`] routes the
//! same inserts through an [`rmt_sets::SetTrie`], whose superset/subset
//! queries prune on shared prefixes. [`FamilyBackend::select`] picks per
//! candidate count, overridable with the `RMT_FAMILY_BACKEND` environment
//! variable (`explicit` | `trie`). Both backends produce the *same* sorted
//! antichain, so which one ran is unobservable in results — only in time.

use std::sync::OnceLock;

use rmt_sets::{NodeSet, SetTrie};

/// A monotone family of node sets under construction, abstracted over the
/// antichain representation.
///
/// Implementations maintain the same contract as
/// [`AdversaryStructure`](crate::AdversaryStructure): the family is the
/// down-closure of the stored antichain plus the implied ∅; the empty set is
/// never stored; [`MonotoneFamily::into_antichain`] returns the maximal sets
/// in canonical sorted [`NodeSet`] order.
pub trait MonotoneFamily {
    /// Adds `set` (and implicitly its down-closure) to the family, pruning
    /// subsumed sets. Returns `true` if the family grew; the empty set is a
    /// member already and reports `false`.
    fn insert_maximal(&mut self, set: NodeSet) -> bool;

    /// Returns `true` if `set` is a member (a subset of some maximal set, or
    /// empty).
    fn contains_member(&self, set: &NodeSet) -> bool;

    /// Number of maximal sets currently stored.
    fn maximal_count(&self) -> usize;

    /// The antichain of maximal sets, sorted in canonical [`NodeSet`] order.
    fn into_antichain(self) -> Vec<NodeSet>;
}

/// The explicit sorted-`Vec` antichain: one subsumption scan per insert.
///
/// This is exactly the historical `AdversaryStructure::add_set` algorithm
/// and serves as the differential ground truth for [`TrieFamily`].
#[derive(Clone, Debug, Default)]
pub struct ExplicitFamily {
    sets: Vec<NodeSet>,
}

impl ExplicitFamily {
    /// Creates an empty family (`{∅}`).
    pub fn new() -> Self {
        ExplicitFamily::default()
    }
}

impl MonotoneFamily for ExplicitFamily {
    fn insert_maximal(&mut self, set: NodeSet) -> bool {
        if set.is_empty() || self.sets.iter().any(|m| set.is_subset(m)) {
            return false;
        }
        self.sets.retain(|m| !m.is_subset(&set));
        let pos = self
            .sets
            .binary_search(&set)
            .expect_err("subsumption scan rules out equal sets");
        self.sets.insert(pos, set);
        true
    }

    fn contains_member(&self, set: &NodeSet) -> bool {
        set.is_empty() || self.sets.iter().any(|m| set.is_subset(m))
    }

    fn maximal_count(&self) -> usize {
        self.sets.len()
    }

    fn into_antichain(self) -> Vec<NodeSet> {
        self.sets
    }
}

/// The trie-compressed antichain: subsumption checks walk an
/// [`rmt_sets::SetTrie`] instead of scanning a list.
#[derive(Clone, Debug, Default)]
pub struct TrieFamily {
    trie: SetTrie,
}

impl TrieFamily {
    /// Creates an empty family (`{∅}`).
    pub fn new() -> Self {
        TrieFamily::default()
    }

    /// Trie nodes currently allocated — the compressed size of the family.
    pub fn node_count(&self) -> usize {
        self.trie.node_count()
    }
}

impl MonotoneFamily for TrieFamily {
    fn insert_maximal(&mut self, set: NodeSet) -> bool {
        self.trie.insert_maximal(&set)
    }

    fn contains_member(&self, set: &NodeSet) -> bool {
        set.is_empty() || self.trie.contains_superset(set)
    }

    fn maximal_count(&self) -> usize {
        self.trie.len()
    }

    fn into_antichain(self) -> Vec<NodeSet> {
        self.trie.to_sorted_sets()
    }
}

/// Candidate count at and above which [`FamilyBackend::select`] switches
/// from the explicit list to the trie. Calibrated with the `antichain_ops`
/// Criterion bench: below a few hundred candidates the linear scan's cache
/// friendliness wins; above it the trie's pruned subsumption checks do.
pub const TRIE_SELECT_THRESHOLD: usize = 256;

/// Which antichain representation to build a family with.
///
/// Selection is a pure function of the candidate count (plus a process-wide
/// env override read once), so any code path that records backend choices as
/// metrics stays deterministic across thread counts and runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilyBackend {
    /// Sorted `Vec<NodeSet>` with linear subsumption scans.
    Explicit,
    /// [`rmt_sets::SetTrie`]-backed antichain.
    Trie,
}

impl FamilyBackend {
    /// Picks a backend for a build expected to see `expected_candidates`
    /// insert attempts: [`FamilyBackend::Trie`] from
    /// [`TRIE_SELECT_THRESHOLD`] candidates up, [`FamilyBackend::Explicit`]
    /// below. `RMT_FAMILY_BACKEND=explicit|trie` (read once per process)
    /// forces one backend everywhere — the differential test suites use the
    /// forced modes to pin both representations against each other.
    pub fn select(expected_candidates: usize) -> FamilyBackend {
        if let Some(forced) = backend_override() {
            return forced;
        }
        if expected_candidates >= TRIE_SELECT_THRESHOLD {
            FamilyBackend::Trie
        } else {
            FamilyBackend::Explicit
        }
    }

    /// An empty builder for this backend.
    pub fn builder(self) -> FamilyBuilder {
        match self {
            FamilyBackend::Explicit => FamilyBuilder::Explicit(ExplicitFamily::new()),
            FamilyBackend::Trie => FamilyBuilder::Trie(TrieFamily::new()),
        }
    }
}

fn backend_override() -> Option<FamilyBackend> {
    static OVERRIDE: OnceLock<Option<FamilyBackend>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| match std::env::var("RMT_FAMILY_BACKEND") {
        Ok(v) if v.eq_ignore_ascii_case("explicit") => Some(FamilyBackend::Explicit),
        Ok(v) if v.eq_ignore_ascii_case("trie") => Some(FamilyBackend::Trie),
        _ => None,
    })
}

/// A [`MonotoneFamily`] dispatching to the backend chosen by
/// [`FamilyBackend::select`], without boxing.
#[derive(Clone, Debug)]
pub enum FamilyBuilder {
    /// Explicit sorted-list build.
    Explicit(ExplicitFamily),
    /// Trie-compressed build.
    Trie(TrieFamily),
}

impl MonotoneFamily for FamilyBuilder {
    fn insert_maximal(&mut self, set: NodeSet) -> bool {
        match self {
            FamilyBuilder::Explicit(f) => f.insert_maximal(set),
            FamilyBuilder::Trie(f) => f.insert_maximal(set),
        }
    }

    fn contains_member(&self, set: &NodeSet) -> bool {
        match self {
            FamilyBuilder::Explicit(f) => f.contains_member(set),
            FamilyBuilder::Trie(f) => f.contains_member(set),
        }
    }

    fn maximal_count(&self) -> usize {
        match self {
            FamilyBuilder::Explicit(f) => f.maximal_count(),
            FamilyBuilder::Trie(f) => f.maximal_count(),
        }
    }

    fn into_antichain(self) -> Vec<NodeSet> {
        match self {
            FamilyBuilder::Explicit(f) => f.into_antichain(),
            FamilyBuilder::Trie(f) => f.into_antichain(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn both() -> [FamilyBuilder; 2] {
        [
            FamilyBackend::Explicit.builder(),
            FamilyBackend::Trie.builder(),
        ]
    }

    #[test]
    fn backends_agree_on_a_scripted_build() {
        let script = [
            set(&[0, 1]),
            set(&[0]),
            NodeSet::new(),
            set(&[2, 4]),
            set(&[0, 1, 2]),
            set(&[2]),
            set(&[3]),
            set(&[2, 4]),
        ];
        let mut results = Vec::new();
        for mut f in both() {
            let grew: Vec<bool> = script.iter().map(|s| f.insert_maximal(s.clone())).collect();
            assert!(f.contains_member(&set(&[1, 2])));
            assert!(f.contains_member(&NodeSet::new()));
            assert!(!f.contains_member(&set(&[3, 4])));
            assert_eq!(f.maximal_count(), 3);
            results.push((grew, f.into_antichain()));
        }
        assert_eq!(results[0], results[1]);
        assert!(results[0].1.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn selection_is_monotone_in_candidate_count() {
        if std::env::var("RMT_FAMILY_BACKEND").is_ok() {
            return; // forced mode: selection intentionally constant
        }
        assert_eq!(FamilyBackend::select(0), FamilyBackend::Explicit);
        assert_eq!(
            FamilyBackend::select(TRIE_SELECT_THRESHOLD - 1),
            FamilyBackend::Explicit
        );
        assert_eq!(
            FamilyBackend::select(TRIE_SELECT_THRESHOLD),
            FamilyBackend::Trie
        );
    }

    #[test]
    fn trie_family_reports_compressed_size() {
        let mut f = TrieFamily::new();
        f.insert_maximal(set(&[0, 1, 2]));
        f.insert_maximal(set(&[0, 1, 3]));
        assert_eq!(f.node_count(), 4);
        assert_eq!(f.maximal_count(), 2);
    }
}
