//! Offline stand-in for `criterion`.
//!
//! Implements a small but real timing harness behind the API surface the
//! workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_with_input, finish}`,
//! `Bencher::{iter, iter_batched}`, [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! warmed up, timed over `sample_size` samples, and reported to stdout as
//! `group/name/param  median  (min .. max)` per iteration.
//!
//! No statistics files, HTML reports, or command-line filtering — run with
//! `cargo bench` and read stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a function name and a
/// parameter rendered with `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// this harness always runs setup per batch of one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Setup re-run for every single iteration.
    PerIteration,
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    samples: usize,
    /// Per-sample mean iteration times, filled by `iter`/`iter_batched`.
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f`, called in a loop; the sample value is the mean time of
    /// one call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup + calibration: find an iteration count that takes ≳1ms.
        let mut iters: u32 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            if start.elapsed() >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.results.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warmup.
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&format!("{}/{}", id.name, id.param), &bencher.results);
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(&name.to_string(), &bencher.results);
        self
    }

    fn report(&self, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{name}: no samples recorded", self.name);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "{}/{name}: median {median:?} (min {:?} .. max {:?}, {} samples)",
            self.name,
            sorted[0],
            sorted[sorted.len() - 1],
            sorted.len(),
        );
    }

    /// Ends the group (printing happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.bench_with_input(BenchmarkId::new("batched", 1), &1u64, |b, &x| {
            b.iter_batched(
                || vec![x; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
