//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so this crate provides the
//! subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, range strategies, tuples,
//! * [`collection::vec`] / [`collection::btree_set`], [`arbitrary::any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking** — a failing case panics with its (deterministic) case number,
//! which together with the fixed per-test seed derivation is enough to
//! reproduce it. Case generation is seeded from the test's module path and
//! name, so runs are stable across processes.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case-generation RNG.

    use rand::{RngCore, SeedableRng, Xoshiro256PlusPlus};
    use std::hash::{Hash, Hasher};

    /// The RNG handed to strategies, one per test case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: Xoshiro256PlusPlus,
    }

    impl TestRng {
        /// Builds the RNG for case number `case` of the named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            test_name.hash(&mut h);
            TestRng {
                inner: Xoshiro256PlusPlus::seed_from_u64(h.finish() ^ u64::from(case) << 32),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore as _;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a collection size specification.
    pub trait IntoSizeRange {
        /// The inclusive (lo, hi) size bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    fn sample_len(rng: &mut TestRng, size: &impl IntoSizeRange) -> usize {
        let (lo, hi) = size.bounds();
        rng.random_range(lo..=hi)
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = sample_len(rng, &self.size);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// A `BTreeSet` of values from `element`; the size bound is best-effort
    /// (duplicates are dropped, as upstream does after deduplication).
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: IntoSizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = sample_len(rng, &self.size);
            let mut out = BTreeSet::new();
            // Bounded attempts: small domains may not have `len` distinct
            // values, which upstream also tolerates by under-filling.
            for _ in 0..len.saturating_mul(4) {
                if out.len() >= len {
                    break;
                }
                out.insert(self.element.new_value(rng));
            }
            out
        }
    }

    /// Generates sets of `element` values with sizes (at most) in `size`.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: IntoSizeRange,
    {
        BTreeSetStrategy { element, size }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property test (panics on failure; this stub
/// performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut case_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $pat = $crate::strategy::Strategy::new_value(&$strat, &mut case_rng);
                )+
                // One generated case; assertion macros panic with enough
                // context (deterministic case derivation) to reproduce.
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_and_maps_compose(x in evens(), (a, b) in (0usize..5, 0.0f64..1.0)) {
            prop_assert!(x.is_multiple_of(2));
            prop_assert!(a < 5);
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn collections_respect_sizes(v in crate::collection::vec(0u32..10, 2..6),
                                     s in crate::collection::btree_set(0u32..100, 0..=4)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() <= 4);
            prop_assert_eq!(v.iter().filter(|x| **x >= 10).count(), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_override_applies(x in any::<u64>()) {
            // Not much to assert beyond type-correct generation.
            let _ = x;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy as _;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u32..1000, 0..10);
        let a: Vec<_> = (0..20)
            .map(|c| s.new_value(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<_> = (0..20)
            .map(|c| s.new_value(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
