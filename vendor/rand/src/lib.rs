//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the *exact API surface it uses* — nothing more — as a
//! std-only crate: [`RngCore`], the [`Rng`] extension trait with
//! `random_bool` / `random_range`, and [`SeedableRng`] with `seed_from_u64`.
//! Generators are deterministic for a given seed (xoshiro256++ driven by a
//! SplitMix64 seeding sequence), which is all the reproducibility the
//! experiments and property tests rely on; no compatibility with upstream
//! `rand`'s value streams is implied.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The minimal random-number core: a 64-bit output function.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type usable as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range!(u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Maps 64 random bits to [0, 1).
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, as the upstream implementation does.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing random-value methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Draws a uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: the seeding sequence recommended for xoshiro generators.
pub(crate) fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — small, fast, and statistically solid; used as the core of
/// every generator in this stub.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates the generator from a full 256-bit state (must be non-zero).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "state must be non-zero");
        Xoshiro256PlusPlus { s }
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            split_mix_64(&mut sm),
            split_mix_64(&mut sm),
            split_mix_64(&mut sm),
            split_mix_64(&mut sm),
        ];
        Xoshiro256PlusPlus::from_state(s)
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut c = Xoshiro256PlusPlus::seed_from_u64(43);
        let (xs, ys): (Vec<u64>, Vec<u64>) = (0..32).map(|_| (a.next_u64(), b.next_u64())).unzip();
        assert_eq!(xs, ys);
        assert!((0..32).any(|_| c.next_u64() != xs[0]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..12);
            assert!((3..12).contains(&x));
            let y = rng.random_range(0u32..=4);
            assert!(y <= 4);
            let f = rng.random_range(0.2f64..0.8);
            assert!((0.2..0.8).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.1));
    }
}
