//! Offline stand-in for `rand_chacha`.
//!
//! Exposes a [`ChaCha12Rng`] with the constructor surface this workspace
//! uses (`SeedableRng::seed_from_u64`). The underlying generator is the
//! vendored xoshiro256++ core, *not* ChaCha: nothing in the workspace
//! depends on the ChaCha stream itself, only on seeded determinism. See
//! `vendor/rand` for the rationale.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng, Xoshiro256PlusPlus};

/// Drop-in name-compatible deterministic generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha12Rng {
    inner: Xoshiro256PlusPlus,
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(state: u64) -> Self {
        ChaCha12Rng {
            // Domain-separate from bare Xoshiro seeding so the two types
            // seeded with the same integer do not share a stream.
            inner: Xoshiro256PlusPlus::seed_from_u64(state ^ 0xC4AC4A12_C4AC4A12),
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha12Rng::seed_from_u64(0xE3);
        let mut b = ChaCha12Rng::seed_from_u64(0xE3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The extension trait is usable through the type.
        let _ = a.random_range(0usize..10);
        let _ = a.random_bool(0.5);
    }
}
