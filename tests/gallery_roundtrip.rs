//! The gallery instances survive a round trip through the text format, and
//! the shipped `.rmt` files match the library's gallery ground truth.

use rmt::core::{analysis, cuts, gallery, textio};
use rmt::graph::ViewKind;

#[test]
fn gallery_instances_round_trip_through_textio() {
    for (inst, label) in [
        (gallery::tolerant_diamond(ViewKind::AdHoc), "adhoc"),
        (gallery::unsolvable_diamond(ViewKind::Full), "full"),
        (gallery::staggered_theta(ViewKind::Radius(2)), "radius 2"),
    ] {
        let text = textio::format_instance(&inst, label);
        let again = textio::parse_instance(&text).expect("round trip parses");
        assert_eq!(again.graph(), inst.graph());
        assert_eq!(again.adversary(), inst.adversary());
        assert_eq!(again.dealer(), inst.dealer());
        assert_eq!(again.receiver(), inst.receiver());
        assert_eq!(
            cuts::find_rmt_cut(&again).is_some(),
            cuts::find_rmt_cut(&inst).is_some(),
            "{label}"
        );
    }
}

#[test]
fn shipped_instance_files_match_the_gallery() {
    let diamond = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/instances/tolerant_diamond.rmt"
    ))
    .expect("sample file exists");
    let parsed = textio::parse_instance(&diamond).unwrap();
    let reference = gallery::tolerant_diamond(ViewKind::AdHoc);
    assert_eq!(parsed.graph(), reference.graph());
    assert_eq!(parsed.adversary(), reference.adversary());

    let theta = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/instances/staggered_theta.rmt"
    ))
    .expect("sample file exists");
    let parsed = textio::parse_instance(&theta).unwrap();
    let (g, z) = gallery::staggered_theta_parts();
    assert_eq!(parsed.graph(), &g);
    assert_eq!(parsed.adversary(), &z);
    // The file ships radius-2 views: solvable, as documented.
    assert!(analysis::characterize(&parsed).solvable());
}
