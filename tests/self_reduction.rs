//! Integration sweep for Section 5: the 𝒢′ family, Π, and the Theorem-9
//! self-reduction (experiment E7's test-suite form).

use rmt::core::protocols::zcpa::ZCpa;
use rmt::core::reduction::{PiSimulationOracle, StarInstance};
use rmt::core::sampling::{random_instance, random_structure};
use rmt::graph::{generators, ViewKind};
use rmt::sets::NodeSet;
use rmt::sim::{Runner, SilentAdversary};

/// Π achieves RMT on exactly the solvable members of 𝒢′, under every
/// admissible silent corruption.
#[test]
fn pi_is_unique_on_the_star_family() {
    let mut rng = generators::seeded(600);
    for trial in 0..30 {
        let m = 2 + trial % 4;
        let middle: NodeSet = (1..=m as u32).collect();
        let z = random_structure(&middle, 3, 2, &mut rng);
        let star = StarInstance::new(middle, &z);
        let solvable = star.solvable();
        let mut all_ok = true;
        for t in star.structure().maximal_sets() {
            let out = Runner::new(
                star.graph().clone(),
                |v| star.pi_node(v, 5),
                SilentAdversary::new(t.clone()),
            )
            .run();
            let d = out.decision(star.receiver());
            assert!(d.is_none() || d == Some(5), "Π must be safe");
            all_ok &= d == Some(5);
        }
        if star.structure().maximal_sets().is_empty() {
            // Trivial structure: an honest run must decide.
            let out = Runner::new(
                star.graph().clone(),
                |v| star.pi_node(v, 5),
                SilentAdversary::new(NodeSet::new()),
            )
            .run();
            all_ok = out.decision(star.receiver()) == Some(5);
        }
        assert_eq!(solvable, all_ok, "trial {trial}: 𝒵′ = {}", star.structure());
    }
}

/// Z-CPA with the Π-simulation oracle decides exactly like Z-CPA with the
/// explicit oracle, node for node, under silent corruptions — the
/// self-reduction is sound end to end.
#[test]
fn zcpa_with_pi_oracle_is_equivalent() {
    let mut rng = generators::seeded(601);
    for trial in 0..15 {
        let n = 5 + trial % 4;
        let inst = random_instance(n, 0.45, ViewKind::AdHoc, 3, 2, &mut rng);
        for t in inst.worst_case_corruptions() {
            let explicit = Runner::new(
                inst.graph().clone(),
                |v| ZCpa::node(&inst, v, 7),
                SilentAdversary::new(t.clone()),
            )
            .run();
            let simulated = Runner::new(
                inst.graph().clone(),
                |v| ZCpa::with_oracle(&inst, v, 7, PiSimulationOracle::for_node(&inst, v, 1 << 20)),
                SilentAdversary::new(t.clone()),
            )
            .run();
            for v in inst.graph().nodes() {
                assert_eq!(
                    explicit.decision(v),
                    simulated.decision(v),
                    "trial {trial}, T = {t}, node {v}"
                );
            }
        }
    }
}

/// The derived star instances of the reduction lie in 𝓘(𝒢₁): their middle
/// sets are (subsets of) real neighbourhoods and their structures are the
/// corresponding local traces.
#[test]
fn derived_stars_use_local_traces() {
    let mut rng = generators::seeded(602);
    let inst = random_instance(8, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
    for v in inst.graph().nodes() {
        let nbrs = inst.graph().neighbors(v);
        if nbrs.is_empty() {
            continue;
        }
        let star = StarInstance::new(nbrs.clone(), &inst.local_structure(v));
        assert_eq!(star.middle(), nbrs);
        // The star's structure is the trace of 𝒵_v on the middle set.
        for m in star.structure().maximal_sets() {
            assert!(m.is_subset(nbrs));
            assert!(inst.local_structure(v).contains(m));
        }
    }
}
