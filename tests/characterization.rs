//! Integration sweep: the cut characterizations against the protocols,
//! across random instances (the test-suite form of experiments E2/E5).

use rmt::adversary::AdversaryStructure;
use rmt::core::analysis::{pka_attack_suite, run_coupled_attack, zcpa_attack_suite};
use rmt::core::cuts::{find_rmt_cut, zcpa_resilient, zpp_cut_by_fixpoint};
use rmt::core::protocols::attacks::{PKA_ATTACKS, ZCPA_ATTACKS};
use rmt::core::sampling::{random_instance_nonadjacent, random_structure};
use rmt::core::Instance;
use rmt::graph::{generators, ViewKind};

/// Under ad hoc views the RMT-cut (Definition 3) and the RMT 𝒵-pp cut
/// (Definition 7) characterize the same unsolvability — the joint structure
/// 𝒵_B over star views decomposes into the per-node neighbourhood
/// conditions. Theorems 3+5 and 7+8 must therefore agree instance by
/// instance.
#[test]
fn adhoc_rmt_cut_equals_zpp_cut() {
    let mut rng = generators::seeded(404);
    for trial in 0..40 {
        let n = 5 + trial % 4;
        let inst = random_instance_nonadjacent(n, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
        let rmt_cut = find_rmt_cut(&inst).is_some();
        let zpp = zpp_cut_by_fixpoint(&inst).is_some();
        assert_eq!(rmt_cut, zpp, "trial {trial}: {inst:?}");
    }
}

/// Knowledge monotonicity: if the instance is solvable with radius-k views
/// it stays solvable with radius-(k+1) views.
#[test]
fn solvability_is_monotone_in_knowledge() {
    let mut rng = generators::seeded(405);
    for trial in 0..15 {
        let g = generators::gnp_connected(7, 0.35, &mut rng);
        let z = random_structure(g.nodes(), 3, 2, &mut rng);
        let mut prev = false;
        for k in 0..4 {
            let inst = Instance::new(
                g.clone(),
                z.clone(),
                ViewKind::Radius(k),
                0.into(),
                6.into(),
            )
            .unwrap();
            let solvable = find_rmt_cut(&inst).is_none();
            assert!(!prev || solvable, "trial {trial}, radius {k}");
            prev = solvable;
        }
    }
}

/// Theorem 5 (operational): on RMT-cut-free instances RMT-PKA decides the
/// dealer's value under the whole attack suite. Theorem 3 (operational): on
/// instances with a cut, the scenario-swap attack provably blocks it.
#[test]
fn pka_matches_the_characterization() {
    let mut rng = generators::seeded(406);
    let mut solvable_seen = 0;
    let mut unsolvable_seen = 0;
    for trial in 0..20 {
        let n = 5 + trial % 3;
        let inst = random_instance_nonadjacent(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
        match find_rmt_cut(&inst) {
            None => {
                solvable_seen += 1;
                let report = pka_attack_suite(&inst, 7, &PKA_ATTACKS, trial as u64);
                assert!(report.all_correct(), "trial {trial}: {report:?}");
            }
            Some(witness) => {
                unsolvable_seen += 1;
                let rep = run_coupled_attack(&inst, &witness, 0, 1, 1 << 14)
                    .expect("attack constructible");
                assert!(rep.receiver_views_equal, "trial {trial}");
                assert!(rep.blocked, "trial {trial}");
                assert!(!rep.safety_violation, "trial {trial}");
            }
        }
    }
    assert!(solvable_seen > 0);
    // Unsolvable instances are rarer under this sampler; the dedicated
    // diamond cases below always cover the branch.
    let _ = unsolvable_seen;
}

/// The canonical unsolvable diamond goes through the blocked branch.
#[test]
fn diamond_blocked_branch() {
    let mut g = rmt::graph::Graph::new();
    for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
        g.add_edge(u.into(), v.into());
    }
    let z = AdversaryStructure::from_sets([
        rmt::sets::NodeSet::singleton(1u32.into()),
        rmt::sets::NodeSet::singleton(2u32.into()),
    ]);
    let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
    let witness = find_rmt_cut(&inst).unwrap();
    let rep = run_coupled_attack(&inst, &witness, 0, 1, 1 << 14).unwrap();
    assert!(rep.blocked && rep.receiver_views_equal && !rep.safety_violation);
}

/// Theorems 7+8 (operational): Z-CPA's simulated outcomes match the
/// analytic resilience verdict on random ad hoc instances.
#[test]
fn zcpa_matches_the_characterization() {
    let mut rng = generators::seeded(407);
    for trial in 0..25 {
        let n = 5 + trial % 4;
        let inst = random_instance_nonadjacent(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
        let resilient = zcpa_resilient(&inst);
        let report = zcpa_attack_suite(&inst, 7, &ZCPA_ATTACKS);
        assert!(report.safe(), "trial {trial}: {report:?}");
        if resilient {
            assert!(report.all_correct(), "trial {trial}: {report:?}");
        }
    }
}
