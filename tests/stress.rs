//! Long-running randomized consistency sweeps, ignored by default.
//!
//! Run with `cargo test --release --test stress -- --ignored` for a deeper
//! soak than the default suite: thousands of instances through the
//! characterization/protocol equivalences and the safety property.

use rmt::core::analysis::{pka_attack_suite, zcpa_attack_suite};
use rmt::core::cuts::{find_rmt_cut, zcpa_resilient, zpp_cut_by_enumeration, zpp_cut_by_fixpoint};
use rmt::core::protocols::attacks::{PKA_ATTACKS, ZCPA_ATTACKS};
use rmt::core::sampling::random_instance_nonadjacent;
use rmt::graph::{generators, ViewKind};

#[test]
#[ignore = "soak test: ~minutes; run with --ignored"]
fn soak_zpp_decider_equivalence() {
    let mut rng = generators::seeded(0x50AC);
    for trial in 0..600 {
        let n = 5 + trial % 6;
        let inst = random_instance_nonadjacent(n, 0.35, ViewKind::AdHoc, 4, 3, &mut rng);
        assert_eq!(
            zpp_cut_by_enumeration(&inst).is_some(),
            zpp_cut_by_fixpoint(&inst).is_some(),
            "trial {trial}: {inst:?}"
        );
        assert_eq!(
            zpp_cut_by_fixpoint(&inst).is_some(),
            !zcpa_resilient(&inst),
            "trial {trial}"
        );
    }
}

#[test]
#[ignore = "soak test: ~minutes; run with --ignored"]
fn soak_pka_safety_and_resilience() {
    let mut rng = generators::seeded(0x50AD);
    for trial in 0..60 {
        let n = 5 + trial % 3;
        let views = [ViewKind::AdHoc, ViewKind::Radius(2), ViewKind::Full][trial % 3];
        let inst = random_instance_nonadjacent(n, 0.4, views, 3, 2, &mut rng);
        let report = pka_attack_suite(&inst, 7, &PKA_ATTACKS, trial as u64);
        assert!(report.safe(), "trial {trial}: {:?}", report.violations);
        if find_rmt_cut(&inst).is_none() {
            assert!(report.all_correct(), "trial {trial}: {report:?}");
        }
    }
}

#[test]
#[ignore = "soak test: ~minutes; run with --ignored"]
fn soak_zcpa_characterization() {
    let mut rng = generators::seeded(0x50AE);
    for trial in 0..400 {
        let n = 5 + trial % 6;
        let inst = random_instance_nonadjacent(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
        let report = zcpa_attack_suite(&inst, 7, &ZCPA_ATTACKS);
        assert!(report.safe(), "trial {trial}");
        if zcpa_resilient(&inst) {
            assert!(report.all_correct(), "trial {trial}: {report:?}");
        }
    }
}
