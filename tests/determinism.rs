//! Tier-1 determinism gate: an E6-style workload run at `RMT_THREADS`
//! 1, 2 and 8 (plus whatever the environment resolves to) must produce
//! identical witnesses, identical simulator [`Metrics`] and identical
//! machine-readable counter snapshots — wall-clock histograms aside.
//!
//! This is the end-to-end version of the per-decider differential suite in
//! `rmt-core`: it exercises the whole artifact path the `e*` binaries use.

use rmt_par::configured_threads;

use rmt_core::cuts::{
    find_rmt_cut_anchored_par_observed, find_rmt_cut_par_observed,
    zpp_cut_by_enumeration_anchored_par, zpp_cut_by_enumeration_par,
    zpp_cut_by_fixpoint_par_observed,
};
use rmt_core::engine::{Delta, IncrementalEngine};
use rmt_core::protocols::zcpa::run_zcpa;
use rmt_core::sampling::{random_instance_nonadjacent, threshold_instance};
use rmt_core::{Instance, KnowledgeCache};
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;
use rmt_obs::{Clock, Json, Profiler, Registry};
use rmt_sets::NodeSet;
use rmt_sim::{Metrics, SilentAdversary};

/// The per-run record every thread count must reproduce exactly.
#[derive(Debug, PartialEq)]
struct RunRecord {
    witnesses: Vec<String>,
    metrics: Vec<Metrics>,
    counters: String,
}

/// The E6-style workload: deterministic instance families, instrumented
/// parallel deciders, honest Z-CPA runs.
fn run_workload(threads: usize) -> RunRecord {
    let reg = Registry::new();
    let mut witnesses = Vec::new();
    let mut metrics = Vec::new();

    // Family 1: rings with chords under a global threshold (E6's shape).
    let mut rng = seeded(0xDE7);
    for &n in &[8usize, 10] {
        let g = generators::ring_with_chords(n, n / 4, &mut rng);
        let inst = threshold_instance(g, 0, ViewKind::AdHoc, 0, (n / 2) as u32);
        witnesses.push(format!(
            "{:?}",
            find_rmt_cut_par_observed(&inst, &reg, threads)
        ));
        witnesses.push(format!(
            "{:?}",
            zpp_cut_by_fixpoint_par_observed(&inst, &reg, threads)
        ));
        witnesses.push(format!("{:?}", zpp_cut_by_enumeration_par(&inst, threads)));
        witnesses.push(format!(
            "{:?}",
            find_rmt_cut_anchored_par_observed(&inst, &reg, threads)
        ));
        witnesses.push(format!(
            "{:?}",
            zpp_cut_by_enumeration_anchored_par(&inst, threads)
        ));
        let out = run_zcpa(&inst, 7, SilentAdversary::new(NodeSet::new()));
        assert_eq!(out.decision(inst.receiver()), Some(7));
        metrics.push(out.metrics);
    }

    // Family 2: random instances, including unsolvable ones (full scans).
    for trial in 0..4u64 {
        let mut rng = seeded(0xDE70 + trial);
        let inst = random_instance_nonadjacent(7, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
        witnesses.push(format!(
            "{:?}",
            find_rmt_cut_par_observed(&inst, &reg, threads)
        ));
        witnesses.push(format!(
            "{:?}",
            find_rmt_cut_anchored_par_observed(&inst, &reg, threads)
        ));
        witnesses.push(format!(
            "{:?}",
            zpp_cut_by_fixpoint_par_observed(&inst, &reg, threads)
        ));
        materialize_all(&inst, threads, &reg, &mut witnesses);
    }

    // Family 3: the incremental engine over a seeded mutation stream. The
    // engine itself is sequential, but its `family.*` / `cache.*` counters
    // land in the same snapshot the parallel deciders write to, so they must
    // be thread-count invariant too.
    {
        let mut rng = seeded(0xDE71);
        let inst = random_instance_nonadjacent(8, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
        let mut engine = IncrementalEngine::from_instance(&inst, ViewKind::AdHoc);
        let nodes: Vec<_> = inst.graph().nodes().iter().collect();
        let deltas = [
            Delta::AddEdge(nodes[0], nodes[3]),
            Delta::RemoveEdge(nodes[0], nodes[3]),
            Delta::AddEdge(nodes[2], nodes[5]),
            Delta::StructureChange(rmt_adversary::threshold(inst.graph().nodes(), 1)),
            Delta::AddEdge(nodes[1], nodes[4]),
        ];
        for delta in deltas {
            engine.apply_observed(delta, &reg).unwrap();
            witnesses.push(format!("{:?}", engine.decide_rmt_observed(&reg)));
            witnesses.push(format!("{:?}", engine.decide_zpp_observed(&reg)));
        }
    }

    RunRecord {
        witnesses,
        metrics,
        counters: strip_wall_clock(reg.to_json()).encode(),
    }
}

/// Materializes the full joint view through the parallel bounded fold.
fn materialize_all(inst: &Instance, threads: usize, reg: &Registry, witnesses: &mut Vec<String>) {
    let cache = KnowledgeCache::new(inst);
    let view = cache.joint_view(inst.graph().nodes());
    for bound in [2, usize::MAX] {
        let m = view.materialize_bounded_par_observed(bound, threads, reg);
        witnesses.push(format!(
            "{:?}",
            m.map(|r| r.structure().maximal_sets().to_vec())
        ));
    }
}

/// Drops `*_ns` histograms (wall time varies run to run); everything else in
/// the snapshot must be bit-for-bit reproducible.
fn strip_wall_clock(counters: Json) -> Json {
    match counters {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(name, _)| !name.ends_with("_ns"))
                .collect(),
        ),
        other => other,
    }
}

#[test]
fn workload_is_identical_for_every_thread_count() {
    let baseline = run_workload(1);
    assert!(
        !baseline.witnesses.is_empty() && !baseline.counters.is_empty(),
        "the workload must actually exercise the deciders"
    );
    // `configured_threads()` folds the CI matrix (RMT_THREADS=1 / 8) into
    // the tested set.
    for threads in [2, 8, configured_threads()] {
        let run = run_workload(threads);
        assert_eq!(baseline, run, "divergence at {threads} threads");
    }
}

#[test]
fn virtual_clock_snapshots_are_byte_identical_across_thread_counts() {
    // Under the virtual clock even the `*_ns` histograms — and the phase
    // span stream — must be byte-for-byte reproducible at every thread
    // count: timestamps become pure functions of the (sequentialised)
    // instrumentation call sequence.
    let snapshot = |threads: usize| {
        let reg = Registry::new().with_clock(Clock::virtual_ns(17));
        let prof = Profiler::new(reg.clock());
        reg.attach_profiler(prof.clone());
        let mut rng = seeded(0xDE9);
        let inst = random_instance_nonadjacent(7, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
        let mut witnesses = vec![
            format!("{:?}", find_rmt_cut_par_observed(&inst, &reg, threads)),
            format!(
                "{:?}",
                find_rmt_cut_anchored_par_observed(&inst, &reg, threads)
            ),
            format!(
                "{:?}",
                zpp_cut_by_fixpoint_par_observed(&inst, &reg, threads)
            ),
        ];
        witnesses.push(format!("{:?}", prof.events()));
        // NO strip_wall_clock here: the full snapshot, timings included.
        (witnesses, reg.to_json().encode(), reg.render())
    };
    let baseline = snapshot(1);
    assert!(
        baseline.1.contains("_ns"),
        "the snapshot must include timing histograms"
    );
    for threads in [2, 8, configured_threads()] {
        assert_eq!(
            baseline,
            snapshot(threads),
            "divergence at {threads} threads"
        );
    }
}

#[test]
fn wall_clock_histogram_counts_are_still_deterministic() {
    // The *_ns entries are excluded from the byte comparison, but their
    // *counts* (how many timed sections ran) must not depend on threads.
    let counts = |threads: usize| {
        let reg = Registry::new();
        let mut rng = seeded(0xDE8);
        let inst = random_instance_nonadjacent(7, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
        let _ = find_rmt_cut_par_observed(&inst, &reg, threads);
        let _ = zpp_cut_by_fixpoint_par_observed(&inst, &reg, threads);
        (
            reg.histogram("rmt_cut.search_ns").count(),
            reg.histogram("zpp.decide_ns").count(),
        )
    };
    assert_eq!(counts(1), counts(8));
}
