//! Replays the committed counterexample corpus.
//!
//! Every fixture under `tests/corpus/` is a minimized attack the hunter
//! (`rmt-hunt`, driven by the `e14_attack_search` experiment) once found,
//! pinned with the instance recipe and the verdict it produced. Replaying
//! them on every test run turns each past violation into a permanent
//! regression gate, in both directions:
//!
//! * if a scheduler or protocol change makes a recorded attack *stop*
//!   reproducing, the fix (or the regression masking it) is flagged;
//! * if a recorded liveness violation ever turns into a *safety* violation
//!   (`Wrong`), something fundamental broke.
//!
//! Replays run under a [`Watchdog`]: a fixture whose replay hangs (a stuck
//! scheduler, a non-terminating attack) aborts with the fixture's name in
//! the last progress note instead of wedging CI.

use std::time::Duration;

use rmt::hunt::{corpus, Verdict};
use rmt::sim::testing::Watchdog;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

const LIMIT: Duration = Duration::from_secs(120);

#[test]
fn every_corpus_fixture_replays_to_its_recorded_verdict() {
    let dog = Watchdog::arm(
        "every_corpus_fixture_replays_to_its_recorded_verdict",
        LIMIT,
    );
    let fixtures = corpus::load_dir(&corpus_dir()).expect("corpus must parse");
    assert!(
        !fixtures.is_empty(),
        "tests/corpus/ is empty — the committed counterexample corpus is missing"
    );
    for fixture in &fixtures {
        dog.note(fixture.name.clone());
        let report = fixture.replay();
        assert_eq!(
            report.verdict, fixture.verdict,
            "fixture {} no longer reproduces its recorded verdict",
            fixture.name
        );
    }
    dog.disarm();
}

#[test]
fn the_corpus_contains_no_safety_violations() {
    let dog = Watchdog::arm("the_corpus_contains_no_safety_violations", LIMIT);
    // The protocols' safety arguments are structural: no recorded attack —
    // suppression, faults, Byzantine behaviour — should ever have produced
    // a wrong decision. A `Wrong` fixture would mean a real counterexample
    // to the paper's theorems was found and committed; fail loudly so it
    // cannot sit unnoticed in the corpus.
    for fixture in &corpus::load_dir(&corpus_dir()).expect("corpus must parse") {
        assert_ne!(
            fixture.verdict,
            Verdict::Wrong,
            "fixture {} records a safety violation — investigate before anything else",
            fixture.name
        );
    }
    dog.disarm();
}

#[test]
fn corpus_fixtures_are_minimal() {
    let dog = Watchdog::arm("corpus_fixtures_are_minimal", LIMIT);
    // Each committed genome is a local minimum: every strictly simpler
    // shrink candidate must fail to reproduce the verdict. Guards against
    // hand-edited or stale fixtures bloating the corpus.
    for fixture in &corpus::load_dir(&corpus_dir()).expect("corpus must parse") {
        dog.note(fixture.name.clone());
        let inst = fixture.spec.build();
        for simpler in fixture.genome.shrink_candidates() {
            assert_ne!(
                rmt::hunt::execute(&inst, fixture.input, &simpler).verdict,
                fixture.verdict,
                "fixture {} is not minimal: a simpler genome reproduces it",
                fixture.name
            );
        }
    }
    dog.disarm();
}
