//! The METRICS.md contract: every metric name the runtime emits must be
//! documented. An instrumented workload sweeps the deciders, the knowledge
//! join and the RMT-PKA decision engine, then every name in the resulting
//! registry snapshot — and every phase-span name in the profiler stream —
//! must appear backticked in `METRICS.md`. Adding a metric without a
//! catalog row fails this test.

use rmt_adversary::AdversaryStructure;
use rmt_core::cuts::{
    find_rmt_cut_anchored_observed, find_rmt_cut_observed,
    zpp_cut_by_enumeration_anchored_observed, zpp_cut_by_fixpoint_observed,
};
use rmt_core::engine::{Delta, IncrementalEngine};
use rmt_core::protocols::attacks::PkaAttack;
use rmt_core::protocols::pka_decision::{DecisionConfig, ReceiverState};
use rmt_core::sampling::random_instance_nonadjacent;
use rmt_core::{Instance, KnowledgeCache};
use rmt_graph::generators::seeded;
use rmt_graph::{Graph, ViewKind};
use rmt_hunt::{Behaviour, Family, HuntConfig, Hunter, InstanceSpec};
use rmt_netd::{run_session, ChaosPlan, NetdConfig};
use rmt_obs::{Clock, Profiler, Registry, RunEvent};
use rmt_sets::NodeSet;
use rmt_sim::testing::Flood;
use rmt_sim::SilentAdversary;

/// A solvable diamond (𝒵 = {{1}}): the receiver can actually decide, so the
/// decision-side counters get touched too.
fn solvable_diamond() -> Instance {
    let mut g = Graph::new();
    g.add_edge(0.into(), 1.into());
    g.add_edge(0.into(), 2.into());
    g.add_edge(1.into(), 3.into());
    g.add_edge(2.into(), 3.into());
    let z = AdversaryStructure::from_sets([NodeSet::singleton(1u32.into())]);
    Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).expect("well-formed")
}

/// Runs every instrumented code path against one registry + profiler and
/// returns the emitted metric and span names.
fn emitted_names() -> (Vec<&'static str>, Vec<String>) {
    let reg = Registry::new().with_clock(Clock::virtual_ns(1));
    let prof = Profiler::new(reg.clock());
    reg.attach_profiler(prof.clone());

    // Deciders, on a solvable diamond and on random instances (unsolvable
    // ones force full scans and the anchored→exhaustive fallback path).
    let mut instances = vec![solvable_diamond()];
    for trial in 0..3u64 {
        let mut rng = seeded(0xCA7 + trial);
        instances.push(random_instance_nonadjacent(
            7,
            0.35,
            ViewKind::AdHoc,
            3,
            2,
            &mut rng,
        ));
    }
    for inst in &instances {
        let _ = find_rmt_cut_observed(inst, &reg);
        let _ = find_rmt_cut_anchored_observed(inst, &reg);
        let _ = zpp_cut_by_fixpoint_observed(inst, &reg);
        let _ = zpp_cut_by_enumeration_anchored_observed(inst, &reg);
        let cache = KnowledgeCache::new(inst);
        let view = cache.joint_view(inst.graph().nodes());
        let _ = view.materialize_bounded_par_observed(usize::MAX, 1, &reg);
    }

    // The incremental decision engine: an edge toggle plus a structure
    // change covers every `cache.invalidate.*` name, and repeated decides
    // touch both `cache.cert_hits` and `cache.cert_misses`.
    let mut engine = IncrementalEngine::from_instance(&instances[0], ViewKind::AdHoc);
    let _ = engine.decide_rmt_observed(&reg);
    let _ = engine.decide_zpp_observed(&reg);
    engine
        .apply_observed(Delta::AddEdge(0.into(), 3.into()), &reg)
        .expect("well-formed delta");
    let _ = engine.decide_rmt_observed(&reg);
    let _ = engine.decide_rmt_observed(&reg);
    let z = engine.instance().adversary().clone();
    engine
        .apply_observed(Delta::StructureChange(z), &reg)
        .expect("well-formed delta");
    let _ = engine.decide_zpp_observed(&reg);

    // The RMT-PKA receiver decision engine.
    let inst = solvable_diamond();
    let mut state = ReceiverState::new(
        inst.receiver(),
        inst.dealer(),
        inst.graph().clone(),
        inst.adversary().clone(),
    );
    state.ingest_value(7, &[0.into(), 1.into()]);
    state.ingest_value(7, &[0.into(), 2.into()]);
    for relay in [1u32, 2] {
        state.ingest_claim(relay.into(), inst.graph().clone(), inst.adversary().clone());
    }
    let _ = state.decide_observed(&DecisionConfig::default(), &reg);

    // The attack hunter: a tiny budget suffices — the hunt.* counters
    // register in `Hunter::new`, and a handful of candidates exercises the
    // execute/novelty/shrink paths.
    let hunt_inst = InstanceSpec {
        family: Family::E3,
        n: 6,
        view: ViewKind::AdHoc,
        seed: 11,
    }
    .build();
    let config = HuntConfig {
        seed: 0xCA7,
        candidates: 8,
        shrink_budget: 20,
        behaviours: vec![Behaviour::Pka(PkaAttack::Silent)],
    };
    let _ = Hunter::new(&reg).hunt(&hunt_inst, 7, &config);

    // The networked transport: a tiny loopback flood touches dials and
    // frame counters, then `record_into` registers every `netd.*` name.
    let outcome = run_session(
        rmt_graph::generators::cycle(4),
        |v| Flood::new(v, (v.index() == 0).then_some(5)),
        SilentAdversary::new(NodeSet::new()),
        &ChaosPlan::new(),
        NetdConfig::default(),
    )
    .expect("loopback session");
    outcome.stats.record_into(&reg);

    // The session layer: one small batched transmission registers every
    // `session.*` and `wire.*` name.
    let sess_inst = solvable_diamond();
    let plan = rmt_session::SessionPlan::build(&sess_inst);
    rmt_session::Session::new(&plan, vec![7, 8])
        .run_honest()
        .record_into(&reg);

    let spans = prof
        .events()
        .iter()
        .filter_map(|e| match e {
            RunEvent::SpanOpen { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect();
    (reg.metric_names(), spans)
}

#[test]
fn every_emitted_metric_is_documented_in_metrics_md() {
    let catalog = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/METRICS.md"))
        .expect("METRICS.md sits at the repo root");
    let (metrics, spans) = emitted_names();

    // Sanity: the workload must actually exercise each subsystem, or the
    // catalog check would vacuously pass.
    for expected in [
        "rmt_cut.candidates_examined",
        "rmt_cut.search_ns",
        "rmt_cut.separators_enumerated",
        "zpp.corruption_sets_checked",
        "zcpa.sweeps",
        "pka.selections_examined",
        "pka.decide_ns",
        "join.folds",
        "family.joins_explicit",
        "family.joins_trie",
        "family.candidate_sets",
        "family.kept_sets",
        "cache.invalidate.parts",
        "cache.invalidate.domains",
        "cache.invalidate.certs",
        "cache.invalidate.full",
        "cache.cert_hits",
        "cache.cert_misses",
        "hunt.candidates_executed",
        "hunt.shrink_steps",
        "netd.conn.dials",
        "netd.wire.frames_sent",
        "netd.wire.frames_received",
        "session.payloads",
        "session.decide_cache_hits",
        "wire.frame_bits",
        "wire.model_bits",
    ] {
        assert!(
            metrics.contains(&expected),
            "workload no longer emits {expected}; fix the test workload"
        );
    }
    assert!(
        spans.iter().any(|s| s == "rmt_cut.anchored.scan"),
        "workload no longer emits nested phase spans"
    );

    let mut undocumented: Vec<String> = metrics
        .iter()
        .map(|m| (*m).to_string())
        .chain(spans)
        .filter(|name| !catalog.contains(&format!("`{name}`")))
        .collect();
    undocumented.sort();
    undocumented.dedup();
    assert!(
        undocumented.is_empty(),
        "metric names emitted at runtime but missing from METRICS.md: {undocumented:?}\n\
         add a row (backticked name + meaning) to the catalog"
    );
}
