//! End-to-end scenarios through the `rmt` facade crate — what a downstream
//! user's code looks like.
//!
//! Every test runs under a [`Watchdog`]: a hang (a stuck fixpoint, a
//! non-terminating protocol loop) aborts the process with the armed test's
//! name and its last progress note instead of wedging CI until the outer
//! timeout kills it without a diagnosis.

use std::time::Duration;

use rmt::adversary::AdversaryStructure;
use rmt::core::{analysis, cuts, protocols, Instance};
use rmt::graph::{generators, Graph, ViewKind};
use rmt::sets::NodeSet;
use rmt::sim::testing::Watchdog;
use rmt::sim::SilentAdversary;

fn set(ids: &[u32]) -> NodeSet {
    ids.iter().copied().collect()
}

const LIMIT: Duration = Duration::from_secs(120);

/// The full story on one instance: characterize, run both protocols,
/// cross-check the verdicts.
#[test]
fn full_pipeline_on_a_mesh() {
    let dog = Watchdog::arm("full_pipeline_on_a_mesh", LIMIT);
    let mut g = Graph::new();
    for (u, v) in [
        (0, 1),
        (1, 2),
        (2, 5),
        (0, 3),
        (3, 4),
        (4, 5),
        (0, 6),
        (6, 5),
    ] {
        g.add_edge(u.into(), v.into());
    }
    let z = AdversaryStructure::from_sets([set(&[1]), set(&[3, 4])]);
    let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 5.into()).unwrap();

    let c = analysis::characterize(&inst);
    assert!(c.solvable());
    assert!(c.zcpa_solvable());

    for t in inst.worst_case_corruptions() {
        dog.note(format!("corruption {t}"));
        let pka = protocols::rmt_pka::run_pka(&inst, 42, SilentAdversary::new(t.clone()));
        assert_eq!(pka.decision(inst.receiver()), Some(42));
        let zcpa = protocols::zcpa::run_zcpa(&inst, 42, SilentAdversary::new(t.clone()));
        assert_eq!(zcpa.decision(inst.receiver()), Some(42));
    }
    dog.disarm();
}

/// Dealer adjacent to receiver: both protocols use the authenticated edge
/// regardless of how strong the adversary is elsewhere.
#[test]
fn adjacency_beats_any_structure() {
    let dog = Watchdog::arm("adjacency_beats_any_structure", LIMIT);
    let g = generators::complete(5);
    let z = AdversaryStructure::from_sets([set(&[1, 2, 3])]);
    let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 4.into()).unwrap();
    let worst = inst.worst_case_corruptions();
    for t in worst {
        dog.note(format!("corruption {t}"));
        let pka = protocols::rmt_pka::run_pka(&inst, 1, SilentAdversary::new(t.clone()));
        assert_eq!(pka.decision(inst.receiver()), Some(1));
    }
    dog.disarm();
}

/// The metrics surface: message/bit accounting is exposed to users and
/// Z-CPA is dramatically cheaper than RMT-PKA on the same instance.
#[test]
fn metrics_expose_the_efficiency_gap() {
    let dog = Watchdog::arm("metrics_expose_the_efficiency_gap", LIMIT);
    let mut rng = generators::seeded(9);
    let g = generators::ring_with_chords(12, 3, &mut rng);
    let inst = rmt::core::sampling::threshold_instance(g, 0, ViewKind::AdHoc, 0, 6);
    let zcpa = protocols::zcpa::run_zcpa(&inst, 3, SilentAdversary::new(NodeSet::new()));
    let pka = protocols::rmt_pka::run_pka(&inst, 3, SilentAdversary::new(NodeSet::new()));
    assert_eq!(zcpa.decision(inst.receiver()), Some(3));
    assert_eq!(pka.decision(inst.receiver()), Some(3));
    assert!(pka.metrics.honest_messages > zcpa.metrics.honest_messages);
    assert!(pka.metrics.honest_bits > zcpa.metrics.honest_bits);
    dog.disarm();
}

/// Minimal-knowledge analysis agrees with per-radius characterization and
/// the solvable-receivers design view is consistent with per-receiver
/// checks.
#[test]
fn design_phase_queries_are_consistent() {
    let dog = Watchdog::arm("design_phase_queries_are_consistent", LIMIT);
    let g = generators::grid(3, 3);
    let z = AdversaryStructure::from_sets([set(&[4]), set(&[1])]);
    let d = 0u32.into();
    let ok = analysis::solvable_receivers(&g, &z, d, ViewKind::AdHoc);
    for r in g.nodes() {
        if r == d {
            continue;
        }
        dog.note(format!("receiver {r}"));
        let inst = Instance::new(g.clone(), z.clone(), ViewKind::AdHoc, d, r).unwrap();
        assert_eq!(
            ok.contains(r),
            cuts::find_rmt_cut(&inst).is_none(),
            "receiver {r}"
        );
    }
    dog.disarm();
}
