//! Integration sweep for Theorem 4: RMT-PKA never decides a wrong value —
//! on solvable and unsolvable instances alike, under every implemented
//! attack including fictitious topology, and under randomized adversarial
//! noise.

use rand::Rng;
use rmt::core::analysis::pka_attack_suite;
use rmt::core::protocols::attacks::PKA_ATTACKS;
use rmt::core::protocols::rmt_pka::{run_pka, PkaPayload, RmtPka};
use rmt::core::sampling::random_instance;
use rmt::graph::{generators, Graph, ViewKind};
use rmt::sets::NodeSet;
use rmt::sim::{Envelope, FnAdversary};

#[test]
fn attack_suite_never_produces_a_wrong_decision() {
    let mut rng = generators::seeded(500);
    for trial in 0..25 {
        let n = 5 + trial % 4;
        let views = if trial % 2 == 0 {
            ViewKind::AdHoc
        } else {
            ViewKind::Radius(2)
        };
        let inst = random_instance(n, 0.4, views, 3, 2, &mut rng);
        let report = pka_attack_suite(&inst, 7, &PKA_ATTACKS, trial as u64);
        assert!(report.safe(), "trial {trial}: {:?}", report.violations);
    }
}

/// A chaos adversary spraying random forged values, trails and claims every
/// round. Safety must hold against arbitrary garbage, not just the scripted
/// strategies.
#[test]
fn randomized_garbage_is_harmless() {
    let mut rng = generators::seeded(501);
    for trial in 0..10 {
        let n = 6 + trial % 3;
        let inst = random_instance(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
        let input = 7;
        for t in inst.worst_case_corruptions() {
            let dealer = inst.dealer();
            let seed = trial as u64 * 31 + 7;
            let t_inner = t.clone();
            let adv = FnAdversary::new(t.clone(), move |round, graph: &Graph, _| {
                let mut rng = generators::seeded(seed ^ round as u64);
                let mut out = Vec::new();
                for c in &t_inner {
                    for nb in graph.neighbors(c) {
                        if rng.random_bool(0.7) {
                            let fake_mid =
                                rmt::sets::NodeId::new(rng.random_range(0..2 * n as u32));
                            let payload = PkaPayload::DealerValue {
                                value: rng.random_range(0..4),
                                trail: vec![dealer, fake_mid, c],
                            };
                            out.push(Envelope::new(c, nb, payload));
                        }
                    }
                }
                out
            });
            let out = run_pka(&inst, input, adv);
            let d = out.decision(inst.receiver());
            assert!(
                d.is_none() || d == Some(input),
                "trial {trial}, T = {t}: decided {d:?}"
            );
        }
    }
}

/// The safety property is unconditional: even on an instance where the
/// *entire* relay layer may be corrupted, the receiver abstains rather than
/// guessing.
#[test]
fn total_corruption_forces_abstention() {
    let mut g = Graph::new();
    for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
        g.add_edge(u.into(), v.into());
    }
    let z =
        rmt::adversary::AdversaryStructure::from_sets([[1u32, 2].into_iter().collect::<NodeSet>()]);
    let inst = rmt::core::Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
    let report = pka_attack_suite(&inst, 9, &PKA_ATTACKS, 3);
    assert!(report.safe());
    assert_eq!(
        report.correct, 0,
        "nothing can be delivered through a fully corrupt cut"
    );
    let _ = RmtPka::node(&inst, 1.into(), 9); // constructor stays usable on such instances
}
