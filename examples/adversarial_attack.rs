//! The scenario-swap (indistinguishability) attack, live: the executable
//! form of the Theorem 3 lower bound.
//!
//! On an unsolvable instance the attack runs two coupled executions whose
//! receiver-side views are provably identical, so a safe protocol cannot
//! decide in either — watch the transcripts coincide.
//!
//! ```text
//! cargo run --example adversarial_attack
//! ```

use rmt::adversary::AdversaryStructure;
use rmt::core::{analysis::run_coupled_attack, cuts::find_rmt_cut, Instance};
use rmt::graph::{Graph, ViewKind};
use rmt::sets::NodeSet;

fn main() {
    // The canonical unsolvable diamond: either relay may be corrupted.
    let mut g = Graph::new();
    for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
        g.add_edge(u.into(), v.into());
    }
    let z = AdversaryStructure::from_sets([
        NodeSet::singleton(1u32.into()),
        NodeSet::singleton(2u32.into()),
    ]);
    let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();

    let witness = find_rmt_cut(&inst).expect("the diamond admits an RMT-cut");
    println!(
        "RMT-cut witness: C = {} (C₁ = {} ∈ 𝒵, C₂ = {} plausible to B = {})",
        witness.cut, witness.c1, witness.c2, witness.receiver_component
    );

    let report = run_coupled_attack(&inst, &witness, 0, 1, 1 << 16).unwrap();
    println!("\nrun e₀: true structure, dealer value 0, corrupted C₁ mirroring e₁");
    println!("run e₁: forged structure 𝒵′, dealer value 1, corrupted C₂ mirroring e₀");
    println!("receiver views identical: {}", report.receiver_views_equal);
    println!(
        "whole component views identical: {}",
        report.component_views_equal
    );
    println!(
        "receiver decisions: e₀ → {:?}, e₁ → {:?}",
        report.decision_e, report.decision_e2
    );
    println!("safety violation: {}", report.safety_violation);

    assert!(report.receiver_views_equal && !report.safety_violation && report.blocked);
    println!("\nThe receiver cannot distinguish the runs: deciding would be unsafe in one");
    println!("of them, so RMT-PKA (being safe) abstains — exactly Theorem 3.");
}
