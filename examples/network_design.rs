//! Network design with the RMT-cut: which receivers can the dealer reach
//! reliably, and how much topology knowledge does each node need?
//!
//! The paper notes that the new cut notion "can be used to determine the
//! exact subgraph in which RMT is possible in a network design phase" —
//! this example does precisely that on a grid with a general adversary.
//!
//! ```text
//! cargo run --example network_design
//! ```

use rmt::adversary::AdversaryStructure;
use rmt::core::analysis::{minimal_knowledge_radius, solvable_receivers};
use rmt::graph::{generators, ViewKind};
use rmt::sets::NodeSet;

fn main() {
    // A 3×3 grid; the adversary may corrupt the centre or one edge midpoint.
    let g = generators::grid(3, 3);
    let z = AdversaryStructure::from_sets([
        NodeSet::singleton(4u32.into()), // centre
        NodeSet::singleton(1u32.into()), // top midpoint
    ]);
    let dealer = 0u32.into();

    println!("grid 3×3, dealer at corner {dealer}, 𝒵 = {z}");
    println!("{}", g.to_dot("grid"));

    for views in [ViewKind::AdHoc, ViewKind::Full] {
        let ok = solvable_receivers(&g, &z, dealer, views);
        println!("receivers reliably reachable with {views} knowledge: {ok}");
    }

    // Per-receiver minimal knowledge radius.
    println!("\nminimal view radius per receiver (– means unsolvable even fully informed):");
    for r in g.nodes() {
        if r == dealer {
            continue;
        }
        let k = minimal_knowledge_radius(&g, &z, dealer, r, 4);
        println!(
            "  receiver {r}: {}",
            k.map(|k| format!("radius {k}"))
                .unwrap_or_else(|| "–".into())
        );
    }
}
