//! Reliable Broadcast with Z-CPA: certify the whole network, not just one
//! receiver.
//!
//! ```text
//! cargo run --example broadcast
//! ```

use rmt::core::{broadcast, sampling, Instance};
use rmt::graph::{generators, ViewKind};
use rmt::sim::{Runner, SilentAdversary};

fn main() {
    let mut rng = generators::seeded(11);
    let g = generators::king_grid(4, 4);
    let z = loop {
        let z = sampling::random_structure(g.nodes(), 3, 2, &mut rng);
        if !z.is_trivial() {
            break z;
        }
    };
    let inst = Instance::new(g.clone(), z, ViewKind::AdHoc, 0.into(), 15.into()).unwrap();

    println!("4×4 king grid, dealer 0, 𝒵 = {}", inst.adversary());
    match broadcast::zpp_cut_exists(&inst) {
        None => println!("broadcast solvable: every honest node will be certified"),
        Some(w) => println!(
            "broadcast unsolvable: corruption {} strands {}",
            w.c1, w.undecided
        ),
    }

    for t in broadcast::worst_case_corruptions(&inst) {
        let predicted = broadcast::coverage(&inst, &t);
        let out = Runner::new(
            g.clone(),
            |v| broadcast::zcpa_broadcast_node(&inst, v, 3),
            SilentAdversary::new(t.clone()),
        )
        .run();
        let decided = out.decided().len();
        println!(
            "corruption {t}: {decided} nodes decided in {} rounds (fixpoint predicted {})",
            out.metrics.rounds,
            predicted.len(),
        );
        for v in g.nodes() {
            if v != inst.dealer() && !t.contains(v) {
                assert_eq!(out.decision(v) == Some(3), predicted.contains(v));
            }
        }
    }
    println!("simulated coverage matches the fixpoint prediction exactly.");
}
