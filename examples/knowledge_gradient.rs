//! How much knowledge is enough? Sweep the view radius on the *staggered
//! theta* — the designed knowledge-gap witness — and watch solvability flip
//! exactly at radius 2.
//!
//! The staggered theta (see `rmt::core::gallery`) has three disjoint
//! dealer–receiver routes with one corruptible node each at staggered
//! depths. No two structure members cut the graph (full knowledge: fine),
//! but radius-1 views let the adversary frame a *triple* cut whose pieces
//! each look locally plausible — so the ad hoc model is provably
//! unsolvable while radius-2 knowledge dissolves the framing.
//!
//! ```text
//! cargo run --example knowledge_gradient
//! ```

use rmt::core::{analysis, gallery, protocols::rmt_pka::run_pka, Instance};
use rmt::graph::ViewKind;
use rmt::sim::SilentAdversary;

fn main() {
    let (g, z) = gallery::staggered_theta_parts();
    println!("staggered theta: dealer 0, receiver 9, 𝒵 = {z}");
    println!("{}", g.to_dot("theta"));

    let min_k = analysis::minimal_knowledge_radius(&g, &z, 0.into(), 9.into(), 4);
    println!("minimal knowledge radius: {min_k:?}\n");

    for k in 0..=3 {
        let inst = Instance::new(
            g.clone(),
            z.clone(),
            ViewKind::Radius(k),
            0.into(),
            9.into(),
        )
        .unwrap();
        let solvable = analysis::characterize(&inst).solvable();
        print!(
            "radius {k}: characterization says {}",
            if solvable { "solvable  " } else { "unsolvable" }
        );
        if solvable {
            let worst = inst.worst_case_corruptions();
            let all_ok = worst.iter().all(|t| {
                run_pka(&inst, 5, SilentAdversary::new(t.clone())).decision(inst.receiver())
                    == Some(5)
            });
            println!(
                " | RMT-PKA delivers under all {} worst-case corruptions: {all_ok}",
                worst.len()
            );
        } else {
            println!(" | RMT-PKA (safe) will abstain under attack");
        }
    }

    let adhoc = gallery::staggered_theta(ViewKind::AdHoc);
    println!(
        "\nZ-CPA (ad hoc) resilient: {} — the partial-knowledge protocol strictly",
        rmt::core::cuts::zcpa_resilient(&adhoc)
    );
    println!("dominates the ad hoc one on this instance (Corollary 6's uniqueness gap).");
}
