//! Z-CPA on a random ad hoc network: certified propagation round by round.
//!
//! ```text
//! cargo run --example ad_hoc_broadcast
//! ```

use rmt::core::{cuts, protocols::zcpa::run_zcpa, sampling};
use rmt::graph::{generators, ViewKind};
use rmt::sim::SilentAdversary;

fn main() {
    let mut rng = generators::seeded(7);
    let inst = sampling::random_instance(12, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
    println!(
        "network: {} nodes, {} edges; dealer {}, receiver {}",
        inst.graph().node_count(),
        inst.graph().edge_count(),
        inst.dealer(),
        inst.receiver()
    );
    println!("adversary structure: {}", inst.adversary());

    // The polynomial characterization (Theorems 7 + 8).
    match cuts::zpp_cut_by_fixpoint(&inst) {
        None => println!("no RMT 𝒵-pp cut: Z-CPA will certify the receiver"),
        Some(w) => println!("𝒵-pp cut exists (C₁ = {}, C₂ = {}): unsolvable", w.c1, w.c2),
    }

    // Worst-case analytic fixpoint vs the simulated protocol, per corruption.
    for t in inst.worst_case_corruptions() {
        let predicted = cuts::zcpa_fixpoint(&inst, &t);
        let out = run_zcpa(&inst, 9, SilentAdversary::new(t.clone()));
        let decided: Vec<String> = out
            .decided()
            .into_iter()
            .map(|(v, x)| format!("{v}:{x}"))
            .collect();
        println!(
            "corruption {t}: fixpoint predicts R {} | simulation: R decided {:?} | decided set [{}]",
            if predicted.contains(inst.receiver()) { "decides" } else { "stalls" },
            out.decision(inst.receiver()),
            decided.join(" ")
        );
        assert_eq!(
            predicted.contains(inst.receiver()),
            out.decision(inst.receiver()).is_some()
        );
    }
}
