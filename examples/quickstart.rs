//! Quickstart: build an RMT instance, check feasibility, run RMT-PKA.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rmt::adversary::AdversaryStructure;
use rmt::core::{analysis, protocols::rmt_pka::run_pka, Instance};
use rmt::graph::{Graph, ViewKind};
use rmt::sets::NodeSet;
use rmt::sim::SilentAdversary;

fn main() {
    // A small mesh: dealer 0, receiver 5, three routes plus a chord.
    let mut g = Graph::new();
    for (u, v) in [
        (0, 1),
        (1, 2),
        (2, 5), // route through 1, 2
        (0, 3),
        (3, 4),
        (4, 5), // route through 3, 4
        (0, 6),
        (6, 5), // short route through 6
        (1, 4),
    ] {
        g.add_edge(u.into(), v.into());
    }

    // The adversary may corrupt {1} or {3, 4} — a general (non-threshold)
    // structure.
    let z = AdversaryStructure::from_sets([
        NodeSet::singleton(1u32.into()),
        [3u32, 4].into_iter().collect::<NodeSet>(),
    ]);

    // Players only know their own neighbourhood (the ad hoc model).
    let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 5.into()).expect("valid instance");

    // 1. Feasibility: the tight RMT-cut characterization (Theorems 3 + 5).
    let characterization = analysis::characterize(&inst);
    println!("RMT solvable: {}", characterization.solvable());
    println!("Z-CPA solvable: {}", characterization.zcpa_solvable());

    // 2. Run RMT-PKA with the worst admissible corruption staying silent.
    for t in inst.worst_case_corruptions() {
        let out = run_pka(&inst, 42, SilentAdversary::new(t.clone()));
        println!(
            "corruption {t}: receiver decided {:?} in {} rounds ({} messages)",
            out.decision(inst.receiver()),
            out.metrics.rounds,
            out.metrics.honest_messages,
        );
        assert_eq!(out.decision(inst.receiver()), Some(42));
    }
    println!("RMT-PKA delivered the dealer's value under every admissible corruption.");
}
