//! Facade crate for the `rmt` workspace: Reliable Message Transmission under
//! partial knowledge and general adversaries (PODC 2016 reproduction).
//!
//! Re-exports every workspace crate under a stable path so downstream users
//! can depend on a single crate:
//!
//! ```
//! use rmt::sets::NodeSet;
//! use rmt::adversary::AdversaryStructure;
//!
//! let z = rmt::adversary::threshold(&NodeSet::universe(4), 1);
//! assert!(z.contains(&NodeSet::singleton(2u32.into())));
//! ```
//!
//! See the workspace `README.md` for a tour and `DESIGN.md` for the paper →
//! module map.

#![forbid(unsafe_code)]

pub use rmt_adversary as adversary;
pub use rmt_core as core;
pub use rmt_graph as graph;
pub use rmt_hunt as hunt;
pub use rmt_net as net;
pub use rmt_netd as netd;
pub use rmt_obs as obs;
pub use rmt_session as session;
pub use rmt_sets as sets;
pub use rmt_sim as sim;
