//! `rmt-trace` — record, render and diff structured run traces.
//!
//! ```text
//! rmt-trace record [DIR]             # coupled e₀/e₁ runs → DIR/trace_e0.jsonl, DIR/trace_e1.jsonl
//! rmt-trace record-faults [DIR]      # faulty run on the diamond → DIR/trace_faulty.jsonl
//! rmt-trace show FILE [--node N]     # render a trace (full, or one node's local view)
//! rmt-trace diff A B [--node N]      # positional diff of two traces (optionally one node's view)
//! ```
//!
//! `record` executes the scenario-swap attack (Figure 2) on the canonical
//! unsolvable diamond and streams both coupled runs to JSON Lines. The
//! paper's indistinguishability argument then becomes a shell one-liner:
//! `rmt-trace diff` on the two files reports plenty of global differences
//! (the dealer sends 0 in e₀ and 1 in e₁), while `--node 3` — the receiver —
//! reports none.
//!
//! `record-faults` runs RMT-PKA on the honest diamond through `rmt-net`'s
//! deterministic fault scheduler (lossy, delaying, duplicating links) and
//! streams the run — including the network's `FaultDrop`/`FaultDelay`/
//! `FaultDuplicate` decisions — to one JSONL file. `show` renders fault
//! events in the full trace; per-node views deliberately omit them (a node
//! cannot observe what the network withheld).
//!
//! `record-profile` runs the anchored RMT-cut decider and an RMT-PKA round
//! loop with the phase profiler attached, merging decider phase spans,
//! per-round `RoundEnd` latency/wire records and protocol events into one
//! JSONL stream. `profile` renders any recorded trace as a span tree (a
//! text flamegraph), a per-round latency/traffic table and a per-link wire
//! bill — sections without data are skipped, so `profile` is also useful
//! on plain `record` output.

use std::process::ExitCode;

use rmt::adversary::AdversaryStructure;
use rmt::core::analysis::run_coupled_attack_observed;
use rmt::core::cuts::find_rmt_cut;
use rmt::core::Instance;
use rmt::graph::{Graph, ViewKind};
use rmt::obs::{
    diff_node_views, diff_traces, parse_jsonl, render_node_view, render_round_profile,
    render_span_tree, render_trace, span_tree, Clock, JsonlObserver, Profiler, Registry, RunEvent,
    RunObserver, WireStats,
};
use rmt::sets::{NodeId, NodeSet};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(args.get(1).map(String::as_str).unwrap_or(".")),
        Some("record-faults") => record_faults(args.get(1).map(String::as_str).unwrap_or(".")),
        Some("record-profile") => record_profile(args.get(1).map(String::as_str).unwrap_or(".")),
        Some("profile") => match args.get(1) {
            Some(path) => profile(path),
            None => usage("profile needs a trace file"),
        },
        Some("show") => match (args.get(1), parse_node_flag(&args)) {
            (Some(path), Ok(node)) => show(path, node),
            (_, Err(e)) => usage(&e),
            (None, _) => usage("show needs a trace file"),
        },
        Some("diff") => match (args.get(1), args.get(2), parse_node_flag(&args)) {
            (Some(a), Some(b), Ok(node)) => diff(a, b, node),
            (_, _, Err(e)) => usage(&e),
            _ => usage("diff needs two trace files"),
        },
        _ => usage("missing subcommand"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("usage: rmt-trace record [DIR]");
    eprintln!("       rmt-trace record-faults [DIR]");
    eprintln!("       rmt-trace record-profile [DIR]");
    eprintln!("       rmt-trace show FILE [--node N]");
    eprintln!("       rmt-trace diff A B [--node N]");
    eprintln!("       rmt-trace profile FILE");
    ExitCode::FAILURE
}

fn parse_node_flag(args: &[String]) -> Result<Option<NodeId>, String> {
    match args.iter().position(|a| a == "--node") {
        None => Ok(None),
        Some(i) => match args.get(i + 1).map(|v| v.parse::<u32>()) {
            Some(Ok(raw)) => Ok(Some(NodeId::new(raw))),
            _ => Err("--node needs an integer node id".into()),
        },
    }
}

/// The canonical unsolvable diamond of Figure 2: D=0, relays 1 and 2, R=3,
/// 𝒵 = {{1},{2}} under ad hoc knowledge.
fn diamond() -> Instance {
    let mut g = Graph::new();
    g.add_edge(0.into(), 1.into());
    g.add_edge(0.into(), 2.into());
    g.add_edge(1.into(), 3.into());
    g.add_edge(2.into(), 3.into());
    let sets: [NodeSet; 2] = [
        NodeSet::singleton(1u32.into()),
        NodeSet::singleton(2u32.into()),
    ];
    let z = AdversaryStructure::from_sets(sets);
    Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).expect("diamond is well-formed")
}

fn record(dir: &str) -> ExitCode {
    let inst = diamond();
    let witness = find_rmt_cut(&inst).expect("the diamond admits an RMT-cut");
    println!(
        "recording coupled runs on the unsolvable diamond (C₁ = {}, C₂ = {})",
        witness.c1, witness.c2
    );

    let path_e0 = std::path::Path::new(dir).join("trace_e0.jsonl");
    let path_e1 = std::path::Path::new(dir).join("trace_e1.jsonl");
    let open = |p: &std::path::Path| match std::fs::File::create(p) {
        Ok(f) => Ok(std::io::BufWriter::new(f)),
        Err(e) => {
            eprintln!("cannot create {}: {e}", p.display());
            Err(ExitCode::FAILURE)
        }
    };
    let mut obs_e0 = match open(&path_e0) {
        Ok(w) => JsonlObserver::new(w),
        Err(c) => return c,
    };
    let mut obs_e1 = match open(&path_e1) {
        Ok(w) => JsonlObserver::new(w),
        Err(c) => return c,
    };

    let report =
        run_coupled_attack_observed(&inst, &witness, 0, 1, 1 << 14, &mut obs_e0, &mut obs_e1)
            .expect("diamond join cannot blow up");
    for (obs, path) in [(obs_e0, &path_e0), (obs_e1, &path_e1)] {
        match obs.into_inner() {
            Ok(mut w) => {
                use std::io::Write as _;
                if let Err(e) = w.flush() {
                    eprintln!("cannot flush {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "receiver views equal: {} | decisions: e₀ → {:?}, e₁ → {:?} | safety violation: {}",
        report.receiver_views_equal, report.decision_e, report.decision_e2, report.safety_violation
    );
    println!("try: rmt-trace diff trace_e0.jsonl trace_e1.jsonl            (runs differ)");
    println!("     rmt-trace diff trace_e0.jsonl trace_e1.jsonl --node 3  (R can't tell)");
    ExitCode::SUCCESS
}

fn record_faults(dir: &str) -> ExitCode {
    use rmt::core::protocols::rmt_pka::RmtPka;
    use rmt::net::{FaultPlan, LinkPolicy, NetRunner};
    use rmt::sim::SilentAdversary;

    let inst = diamond();
    let plan = FaultPlan::new(0xFA17).with_default_policy(LinkPolicy {
        drop: 0.2,
        delay: 0.4,
        max_delay: 2,
        duplicate: 0.15,
        ..LinkPolicy::default()
    });
    println!("recording RMT-PKA on the honest diamond through a faulty network");
    println!("(drop 20%, delay 40% ≤2 rounds, duplicate 15%; fault seed 0xFA17)");

    let path = std::path::Path::new(dir).join("trace_faulty.jsonl");
    let mut obs = match std::fs::File::create(&path) {
        Ok(f) => JsonlObserver::new(std::io::BufWriter::new(f)),
        Err(e) => {
            eprintln!("cannot create {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let out = NetRunner::new(
        inst.graph().clone(),
        |v| RmtPka::node(&inst, v, 1),
        SilentAdversary::new(NodeSet::new()),
        plan,
    )
    .run_observed(&mut obs);
    match obs.into_inner() {
        Ok(mut w) => {
            use std::io::Write as _;
            if let Err(e) = w.flush() {
                eprintln!("cannot flush {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "receiver decision: {:?} | rounds: {} | lost: {} | delayed: {} | duplicated: {}",
        out.decision(inst.receiver()),
        out.metrics.rounds,
        out.faults.lost(),
        out.faults.delayed,
        out.faults.duplicated,
    );
    println!("try: rmt-trace show trace_faulty.jsonl           (fault decisions rendered)");
    println!("     rmt-trace show trace_faulty.jsonl --node 3  (the node-local view hides them)");
    ExitCode::SUCCESS
}

fn record_profile(dir: &str) -> ExitCode {
    use rmt::core::cuts::find_rmt_cut_anchored_observed;
    use rmt::core::protocols::rmt_pka::RmtPka;
    use rmt::sim::{Runner, SilentAdversary};

    let inst = diamond();
    let clock = Clock::wall();
    let reg = Registry::new().with_clock(clock.clone());
    let prof = Profiler::new(reg.clock());
    reg.attach_profiler(prof.clone());
    let witness = find_rmt_cut_anchored_observed(&inst, &reg);
    println!(
        "profiled the anchored decider on the diamond: {}",
        witness
            .as_ref()
            .map_or("no RMT-cut".to_string(), |w| format!(
                "RMT-cut C₁ = {}, C₂ = {}",
                w.c1, w.c2
            ))
    );

    let path = std::path::Path::new(dir).join("trace_profile.jsonl");
    let mut obs = match std::fs::File::create(&path) {
        Ok(f) => JsonlObserver::new(std::io::BufWriter::new(f)),
        Err(e) => {
            eprintln!("cannot create {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    // Decider phase spans lead the stream; the profiled protocol run —
    // per-round RoundEnd latency/wire records included — follows.
    let spans = prof.events();
    for ev in &spans {
        obs.on_event(ev);
    }
    let out = Runner::new(
        inst.graph().clone(),
        |v| RmtPka::node(&inst, v, 1),
        SilentAdversary::new(NodeSet::new()),
    )
    .with_profiling(clock)
    .run_observed(&mut obs);
    match obs.into_inner() {
        Ok(mut w) => {
            use std::io::Write as _;
            if let Err(e) = w.flush() {
                eprintln!("cannot flush {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "receiver decision: {:?} | rounds: {} | decider spans: {}",
        out.decision(inst.receiver()),
        out.metrics.rounds,
        spans.len() / 2,
    );
    println!("decider counters:");
    println!("{}", reg.render());
    println!("try: rmt-trace profile trace_profile.jsonl");
    ExitCode::SUCCESS
}

fn profile(path: &str) -> ExitCode {
    let events = match load(path) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut printed = false;
    match span_tree(&events) {
        Ok(roots) if !roots.is_empty() => {
            println!("phase spans:");
            print!("{}", render_span_tree(&roots));
            printed = true;
        }
        Ok(_) => {}
        Err(e) => {
            eprintln!("malformed span stream in {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if events
        .iter()
        .any(|e| matches!(e, RunEvent::RoundEnd { .. }))
    {
        if printed {
            println!();
        }
        println!("round profile:");
        print!("{}", render_round_profile(&events));
        printed = true;
    }
    let wire = WireStats::from_events(&events);
    if wire.total().messages > 0 {
        if printed {
            println!();
        }
        println!("wire bill:");
        print!("{}", wire.render());
        printed = true;
    }
    if !printed {
        println!("no profiling data in {path} (no spans, rounds or wire traffic)");
    }
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Vec<RunEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let values = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    values
        .iter()
        .map(RunEvent::from_json)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{path}: {e}"))
}

fn show(path: &str, node: Option<NodeId>) -> ExitCode {
    let events = match load(path) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match node {
        None => print!("{}", render_trace(&events)),
        Some(v) => print!("{}", render_node_view(&events, v.raw())),
    }
    ExitCode::SUCCESS
}

fn diff(a: &str, b: &str, node: Option<NodeId>) -> ExitCode {
    let (left, right) = match (load(a), load(b)) {
        (Ok(l), Ok(r)) => (l, r),
        (l, r) => {
            for e in [l.err(), r.err()].into_iter().flatten() {
                eprintln!("{e}");
            }
            return ExitCode::FAILURE;
        }
    };
    let diffs = match node {
        None => diff_traces(&left, &right),
        Some(v) => diff_node_views(&left, &right, v.raw()),
    };
    let scope = match node {
        None => "full traces".to_string(),
        Some(v) => format!("view of {v}"),
    };
    if diffs.is_empty() {
        println!("identical ({scope}): {a} == {b}");
        ExitCode::SUCCESS
    } else {
        println!("{} difference(s) ({scope}): {a} vs {b}", diffs.len());
        for d in &diffs {
            println!("{d}");
        }
        ExitCode::FAILURE
    }
}
