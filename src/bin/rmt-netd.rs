//! `rmt-netd` — host a fleet of socket-backed RMT sessions in one process.
//!
//! Each session samples an instance from the hunt families (`e2`/`e3`),
//! runs RMT-PKA over real loopback TCP links, and reports a verdict:
//!
//! * `SAFE`    — the receiver decided the dealer's value;
//! * `STALLED` — the receiver never decided (liveness lost, safety kept);
//! * `WRONG`   — the receiver decided a *different* value (must never happen);
//! * `PANIC`   — the session job died (counted as a failure).
//!
//! The process exits nonzero iff any session is `WRONG` or `PANIC`, so CI
//! can use it as a gate. `--chaos` adds a kill/restart and a transient
//! sever to every session; the verdicts must still avoid `WRONG`.
//! `--trace DIR` writes each session's canonical event stream as
//! `DIR/<session>.jsonl` (the format `rmt-trace` reads), so a failing CI
//! run can upload the exact traces that produced the bad verdict.
//!
//! ```text
//! cargo run --bin rmt-netd -- --smoke
//! cargo run --bin rmt-netd -- --sessions 16 --concurrency 4 --family e3 --n 8 --chaos
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use rmt::core::protocols::rmt_pka::RmtPka;
use rmt::graph::ViewKind;
use rmt::hunt::{Family, InstanceSpec};
use rmt::netd::{run_session_observed, ChaosPlan, Daemon, NetdConfig};
use rmt::obs::{JsonlObserver, Registry};
use rmt::sets::{NodeId, NodeSet};
use rmt::sim::SilentAdversary;

struct Args {
    sessions: u64,
    concurrency: usize,
    family: Family,
    n: usize,
    seed: u64,
    chaos: bool,
    trace: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sessions: 8,
        concurrency: 4,
        family: Family::E2,
        n: 7,
        seed: 0xD00D,
        chaos: false,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--smoke" => {
                args.sessions = 4;
                args.concurrency = 2;
            }
            "--chaos" => args.chaos = true,
            "--sessions" => {
                args.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--concurrency" => {
                args.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|e| format!("--concurrency: {e}"))?
            }
            "--family" => {
                args.family = match value("--family")?.as_str() {
                    "e2" | "E2" => Family::E2,
                    "e3" | "E3" => Family::E3,
                    other => return Err(format!("--family: unknown family {other:?}")),
                }
            }
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// The chaos applied per session under `--chaos`: kill+restart one
/// non-dealer, non-receiver node and sever one of its edges for a round.
fn chaos_for(inst: &rmt::core::Instance) -> ChaosPlan {
    let victim = inst
        .graph()
        .nodes()
        .iter()
        .find(|&v| v != inst.dealer() && v != inst.receiver());
    let mut plan = ChaosPlan::new();
    if let Some(victim) = victim {
        plan = plan.with_kill(victim, 1).with_restart(victim, 3);
        if let Some(peer) = inst.graph().neighbors(victim).iter().find(|&u| u != victim) {
            plan = plan.with_sever(victim, peer, 4, 5);
        }
    }
    plan
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rmt-netd: {e}");
            eprintln!(
                "usage: rmt-netd [--smoke] [--chaos] [--sessions N] [--concurrency K] \
                 [--family e2|e3] [--n NODES] [--seed BASE]"
            );
            return ExitCode::FAILURE;
        }
    };

    let view = match args.family {
        Family::E2 => ViewKind::Radius(2),
        Family::E3 => ViewKind::Full,
    };
    if let Some(dir) = &args.trace {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("rmt-netd: cannot create trace dir {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let jobs: Vec<(String, _)> = (0..args.sessions)
        .map(|i| {
            let spec = InstanceSpec {
                family: args.family,
                n: args.n,
                view,
                seed: args.seed.wrapping_add(i),
            };
            let chaos_on = args.chaos;
            let name = format!("{}-n{}-seed{:#x}", spec.family.as_str(), spec.n, spec.seed);
            let trace_path = args.trace.as_ref().map(|d| d.join(format!("{name}.jsonl")));
            let job = move || {
                let inst = spec.build();
                let input = 1000 + spec.seed;
                let chaos = if chaos_on {
                    chaos_for(&inst)
                } else {
                    ChaosPlan::new()
                };
                let sink: Box<dyn std::io::Write + Send> = match &trace_path {
                    Some(p) => Box::new(std::fs::File::create(p).expect("creating trace file")),
                    None => Box::new(std::io::sink()),
                };
                let mut observer = JsonlObserver::new(sink);
                let outcome = run_session_observed(
                    inst.graph().clone(),
                    |v| RmtPka::node(&inst, v, input),
                    SilentAdversary::new(NodeSet::new()),
                    &chaos,
                    NetdConfig {
                        seed: spec.seed,
                        ..NetdConfig::default()
                    },
                    &mut observer,
                )
                .expect("session io");
                observer.into_inner().expect("writing trace");
                let receiver: NodeId = inst.receiver();
                (outcome, receiver, input)
            };
            (name, job)
        })
        .collect();

    let results = Daemon::new(args.concurrency).run(jobs);

    let reg = Registry::new();
    let (mut safe, mut stalled, mut wrong, mut panicked) = (0u64, 0u64, 0u64, 0u64);
    for (name, result) in results {
        match result {
            None => {
                panicked += 1;
                println!("{name:<24} PANIC");
            }
            Some((outcome, receiver, input)) => {
                outcome.stats.record_into(&reg);
                let verdict = match outcome.decision(receiver) {
                    Some(d) if d == input => {
                        safe += 1;
                        "SAFE"
                    }
                    Some(_) => {
                        wrong += 1;
                        "WRONG"
                    }
                    None => {
                        stalled += 1;
                        "STALLED"
                    }
                };
                println!(
                    "{name:<24} {verdict:<8} rounds={} msgs={} losses={} sheds={}",
                    outcome.metrics.rounds,
                    outcome.metrics.honest_messages,
                    outcome.losses,
                    outcome.stats.shed_total(),
                );
            }
        }
    }

    println!(
        "fleet: {safe} safe, {stalled} stalled, {wrong} wrong, {panicked} panicked \
         ({} sessions, {} concurrent{})",
        args.sessions,
        args.concurrency,
        if args.chaos { ", chaos on" } else { "" }
    );
    let mut names: Vec<_> = reg
        .metric_names()
        .into_iter()
        .filter(|n| n.starts_with("netd."))
        .collect();
    names.sort_unstable();
    for name in names {
        println!("  {name} = {}", reg.counter(name).get());
    }

    if wrong > 0 || panicked > 0 {
        eprintln!("rmt-netd: {wrong} WRONG + {panicked} PANIC verdicts — failing");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
