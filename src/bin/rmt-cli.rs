//! `rmt-cli` — inspect an RMT instance file: characterize it, find cuts and
//! witnesses, compute the minimal knowledge radius, and exercise the
//! protocols under worst-case corruptions.
//!
//! ```text
//! cargo run --bin rmt-cli -- examples/instances/tolerant_diamond.rmt
//! ```
//!
//! See `rmt::core::textio` for the file format.

use std::process::ExitCode;

use rmt::core::{analysis, textio};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: rmt-cli <instance-file> [dealer-value]");
        eprintln!("file format: see rmt::core::textio (edge/corrupt/dealer/receiver/views)");
        return ExitCode::FAILURE;
    };
    let value: rmt::core::Value = args
        .get(2)
        .map(|v| v.parse().expect("dealer value must be an integer"))
        .unwrap_or(42);

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inst = match textio::parse_instance(&text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "instance: {} nodes, {} edges, dealer {}, receiver {}",
        inst.graph().node_count(),
        inst.graph().edge_count(),
        inst.dealer(),
        inst.receiver()
    );
    println!("adversary structure 𝒵 = {}", inst.adversary());

    let report = analysis::report(&inst, value);

    match &report.rmt_cut {
        None => println!("RMT-cut: none — safe resilient RMT is possible (Theorems 3+5)"),
        Some(w) => println!(
            "RMT-cut: C = {} (C₁ = {}, C₂ = {}) — unsolvable at this knowledge level",
            w.cut, w.c1, w.c2
        ),
    }
    match &report.zpp_cut {
        None => println!("𝒵-pp cut: none — Z-CPA solves this ad hoc instance (Theorems 7+8)"),
        Some(w) => println!(
            "𝒵-pp cut: C₁ = {}, C₂ = {} — Z-CPA cannot solve it",
            w.c1, w.c2
        ),
    }
    if report.quick_unsolvable {
        println!(
            "(the fast pre-filter already proves unsolvability: articulation point or pair cut)"
        );
    }
    match report.minimal_radius {
        Some(k) => println!("minimal uniform knowledge radius: {k}"),
        None => println!("minimal uniform knowledge radius: ∞ (unsolvable even fully informed)"),
    }

    for (pka, zcpa) in report.pka_runs.iter().zip(&report.zcpa_runs) {
        println!(
            "corruption {}: RMT-PKA → {:?} ({} msgs, {} rounds), Z-CPA → {:?} ({} msgs)",
            pka.corruption, pka.decision, pka.messages, pka.rounds, zcpa.decision, zcpa.messages,
        );
    }

    if report.consistent(value) && analysis::report::zcpa_outcomes_consistent(&inst, &report, value)
    {
        println!("protocol outcomes consistent with the characterization");
        ExitCode::SUCCESS
    } else {
        println!("WARNING: characterization/protocol mismatch — please file a bug");
        ExitCode::FAILURE
    }
}
